"""MPI-style communicator over the simulated optical rack.

The adoption-facing API: construct a :class:`Communicator` for a system,
then call collectives on per-rank numpy arrays.  Every call returns the
numerically-correct result *and* the modelled execution report, so a
user can prototype a distributed training loop against the simulated
TeraRack.

Collectives: ``allreduce`` (Wrht/O-Ring/E-Ring/RD), ``reduce``,
``broadcast`` (binomial trees rooted anywhere), ``allgather`` (ring).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..collectives.binomial_tree import generate_binomial_tree
from ..collectives.ring_allreduce import generate_ring_allreduce
from ..collectives.schedule import Schedule, Transfer, TransferOp
from ..config import (ElectricalSystem, OpticalRingSystem, Workload,
                      default_electrical, default_optical)
from ..errors import ConfigurationError
from .allreduce_api import AllreduceOutcome, _execute_numeric, allreduce
from .substrates import ExecutionReport, OpticalRingSubstrate


@dataclass
class CollectiveOutcome:
    """Result arrays plus the modelled execution report."""

    data: List[np.ndarray]
    report: ExecutionReport
    collective: str


def _relabel(schedule: Schedule, root: int, name: str) -> Schedule:
    """Rotate ranks so the schedule's rank 0 becomes ``root``."""
    n = schedule.num_nodes
    out = Schedule(num_nodes=n, num_chunks=schedule.num_chunks, name=name)
    for step in schedule.steps:
        out.add_step(Transfer(
            src=(t.src + root) % n, dst=(t.dst + root) % n,
            chunks=t.chunks, op=t.op, direction_hint=None)
            for t in step)
    return out


def _split_tree(num_nodes: int) -> tuple:
    """(reduce-half, broadcast-half) of the binomial tree schedule."""
    full = generate_binomial_tree(num_nodes)
    k = full.num_steps // 2
    red = Schedule(num_nodes=num_nodes, num_chunks=1, name="tree-reduce")
    bc = Schedule(num_nodes=num_nodes, num_chunks=1, name="tree-bcast")
    for step in full.steps[:k]:
        red.add_step(step.transfers)
    for step in full.steps[k:]:
        bc.add_step(step.transfers)
    return red, bc


def _allgather_schedule(num_nodes: int) -> Schedule:
    """Ring all-gather: node i circulates chunk (i−s) mod n with COPY."""
    sched = Schedule(num_nodes=num_nodes, num_chunks=num_nodes,
                     name=f"ring-allgather-n{num_nodes}")
    for s in range(num_nodes - 1):
        sched.add_step(
            Transfer(src=i, dst=(i + 1) % num_nodes,
                     chunks=((i - s) % num_nodes,),
                     op=TransferOp.COPY, direction_hint="cw")
            for i in range(num_nodes))
    return sched


class Communicator:
    """A group of ``size`` ranks on one simulated system."""

    def __init__(self, size: int,
                 optical: Optional[OpticalRingSystem] = None,
                 electrical: Optional[ElectricalSystem] = None) -> None:
        if size < 2:
            raise ConfigurationError("a communicator needs >= 2 ranks")
        self.size = size
        self.optical = optical if optical is not None \
            else default_optical(size)
        self.electrical = electrical if electrical is not None \
            else default_electrical(size)
        if self.optical.num_nodes != size:
            raise ConfigurationError("optical system size mismatch")
        # One substrate for the communicator's lifetime: the optical
        # network and RWA cache stay warm across repeated collectives.
        self._optical_substrate = OpticalRingSubstrate(self.optical)

    # -- collectives -------------------------------------------------------

    def allreduce(self, arrays: Sequence[np.ndarray],
                  algorithm: str = "wrht") -> AllreduceOutcome:
        """Element-wise sum on every rank (see :func:`allreduce`)."""
        self._check(arrays)
        sub = (self._optical_substrate
               if algorithm in ("wrht", "o-ring") else None)
        return allreduce(arrays, algorithm=algorithm, optical=self.optical,
                         electrical=self.electrical, substrate=sub)

    def reduce(self, arrays: Sequence[np.ndarray],
               root: int = 0) -> CollectiveOutcome:
        """Element-wise sum delivered to ``root`` (binomial tree)."""
        self._check(arrays)
        self._check_rank(root)
        red, _ = _split_tree(self.size)
        sched = _relabel(red, root, f"tree-reduce-root{root}")
        report = self._run_optical(sched, arrays)
        flat = [np.asarray(a, np.float64).reshape(-1) for a in arrays]
        final = _execute_numeric(sched, flat)
        shape = np.asarray(arrays[0]).shape
        out = [f.reshape(shape) for f in final]
        return CollectiveOutcome(out, report, "reduce")

    def broadcast(self, arrays: Sequence[np.ndarray],
                  root: int = 0) -> CollectiveOutcome:
        """Every rank receives ``arrays[root]`` (binomial tree)."""
        self._check(arrays)
        self._check_rank(root)
        _, bc = _split_tree(self.size)
        sched = _relabel(bc, root, f"tree-bcast-root{root}")
        report = self._run_optical(sched, arrays)
        flat = [np.asarray(a, np.float64).reshape(-1) for a in arrays]
        final = _execute_numeric(sched, flat)
        shape = np.asarray(arrays[0]).shape
        return CollectiveOutcome([f.reshape(shape) for f in final],
                                 report, "broadcast")

    def allgather(self, arrays: Sequence[np.ndarray]) -> CollectiveOutcome:
        """Every rank receives the concatenation of all ranks' arrays."""
        self._check(arrays)
        n = self.size
        sched = _allgather_schedule(n)
        report = self._run_optical(sched, arrays)
        # Place rank i's data in chunk i; circulate.
        flats = [np.asarray(a, np.float64).reshape(-1) for a in arrays]
        width = flats[0].size
        state = [np.zeros(n * width) for _ in range(n)]
        for i, f in enumerate(flats):
            state[i][i * width:(i + 1) * width] = f
        final = _execute_numeric(sched, state)
        return CollectiveOutcome(final, report, "allgather")

    # -- helpers --------------------------------------------------------------

    def _run_optical(self, sched: Schedule,
                     arrays: Sequence[np.ndarray]) -> ExecutionReport:
        nbytes = int(np.asarray(arrays[0]).astype(np.float64).nbytes)
        wl = Workload(data_bytes=max(nbytes, 1), name=sched.name,
                      dtype_bytes=8)
        return self._optical_substrate.execute(sched, wl)

    def _check(self, arrays: Sequence[np.ndarray]) -> None:
        if len(arrays) != self.size:
            raise ConfigurationError(
                f"expected {self.size} rank arrays, got {len(arrays)}")
        shapes = {np.asarray(a).shape for a in arrays}
        if len(shapes) != 1:
            raise ConfigurationError(f"rank arrays differ: {shapes}")

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ConfigurationError(
                f"rank {rank} out of range [0, {self.size})")
