"""Utilization traces for fluid simulations.

The recorder accumulates, per link, the integral of carried rate over time
(bytes actually moved) plus the busy time, so reports can show average
utilization per link — useful when studying electrical congestion in the
fat-tree ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

LinkId = Hashable


@dataclass
class LinkTrace:
    """Accumulated statistics for one link."""

    capacity: float
    bytes_carried: float = 0.0
    busy_time: float = 0.0
    peak_rate: float = 0.0
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, start: float, duration: float, rate: float,
               keep_samples: bool) -> None:
        """Account ``rate`` bytes/s carried during ``[start, start+duration)``."""
        if duration <= 0 or rate <= 0:
            return
        self.bytes_carried += rate * duration
        self.busy_time += duration
        self.peak_rate = max(self.peak_rate, rate)
        if keep_samples:
            self.samples.append((start, rate))

    def mean_utilization(self, horizon: float) -> float:
        """Average fraction of capacity used over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.bytes_carried / (self.capacity * horizon))


class TraceRecorder:
    """Collects :class:`LinkTrace` objects for a fluid simulation run."""

    def __init__(self, capacities: Dict[LinkId, float],
                 keep_samples: bool = False) -> None:
        self._keep_samples = keep_samples
        self.links: Dict[LinkId, LinkTrace] = {
            lid: LinkTrace(capacity=c) for lid, c in capacities.items()}

    def record_interval(self, start: float, duration: float,
                        link_rates: Dict[LinkId, float]) -> None:
        """Record the (constant) per-link rates of one fluid interval."""
        for lid, rate in link_rates.items():
            trace = self.links.get(lid)
            if trace is not None:
                trace.record(start, duration, rate, self._keep_samples)

    def total_bytes(self) -> float:
        """Total bytes carried across all links (hop-bytes)."""
        return sum(t.bytes_carried for t in self.links.values())

    def hottest_link(self) -> Tuple[LinkId, LinkTrace] | None:
        """The link with the most bytes carried, or ``None`` if idle."""
        best: Tuple[LinkId, LinkTrace] | None = None
        for lid, t in self.links.items():
            if best is None or t.bytes_carried > best[1].bytes_carried:
                best = (lid, t)
        if best is not None and best[1].bytes_carried == 0:
            return None
        return best
