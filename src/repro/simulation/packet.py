"""Packet-level store-and-forward simulator (fluid-model validator).

The electrical baselines use the fluid model; this module provides the
slower, finer-grained alternative the tests use to *validate* it:
messages are segmented into MTU-sized packets, every link is a FIFO
served at link rate, and packets are forwarded hop by hop after full
reception (store-and-forward) plus link latency.

For a single flow over ``h`` hops this yields the textbook
``h·L + S/B + (h−1)·mtu/B`` — the fluid model's ``L_total + S/B`` plus
the per-hop store-and-forward term, which vanishes as ``mtu → 0``.  For
contending flows, FIFO interleaving approximates fair sharing at packet
granularity.  Built directly on :class:`~repro.simulation.engine.Simulator`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Sequence, Tuple

from ..errors import SimulationError
from ..topology.base import Link, Topology
from .engine import Simulator

DEFAULT_MTU = 1500.0


@dataclass
class PacketFlow:
    """A message of ``size`` bytes from ``src`` to ``dst``."""

    src: int
    dst: int
    size: float
    start_time: float = 0.0
    finish_time: float = field(default=float("nan"), init=False)
    packets_delivered: int = field(default=0, init=False)
    num_packets: int = field(default=0, init=False)


class _LinkQueue:
    """FIFO transmission queue of one directed link.

    Backed by a :class:`~collections.deque`: the head-of-line pop is
    O(1), where a ``list.pop(0)`` would shift the whole backlog and
    make draining a queue of ``n`` packets quadratic — ruinous for the
    long queues a large message segmented at MTU granularity builds up
    behind one bottleneck link.
    """

    def __init__(self, sim: Simulator, link: Link) -> None:
        self.sim = sim
        self.link = link
        self.busy = False
        self.queue: Deque[Tuple[float, object]] = deque()  # (size, context)

    def enqueue(self, size: float, on_delivered) -> None:
        self.queue.append((size, on_delivered))
        if not self.busy:
            self._start_next()

    def _start_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        size, on_delivered = self.queue.popleft()
        serialize = size / self.link.capacity

        def done_serializing() -> None:
            # Head-of-line departs; next packet may start immediately.
            self._start_next()
            # Delivery happens after propagation/latency.
            self.sim.schedule_after(self.link.latency,
                                    lambda: on_delivered())

        self.sim.schedule_after(serialize, done_serializing)


class PacketNetworkSimulator:
    """Simulate :class:`PacketFlow` messages over a topology."""

    def __init__(self, topology: Topology, mtu: float = DEFAULT_MTU) -> None:
        if mtu <= 0:
            raise SimulationError("mtu must be > 0")
        self.topology = topology
        self.mtu = mtu

    def run(self, flows: Sequence[PacketFlow]) -> List[PacketFlow]:
        """Run all flows to completion; fills their ``finish_time``."""
        sim = Simulator()
        queues: Dict[Tuple[int, int, str], _LinkQueue] = {
            l.ident: _LinkQueue(sim, l) for l in self.topology.links}

        for flow in flows:
            path = list(self.topology.path(flow.src, flow.dst))
            if not path:
                flow.finish_time = flow.start_time
                flow.num_packets = 0
                continue
            sizes = self._segment(flow.size)
            flow.num_packets = len(sizes)
            flow.packets_delivered = 0

            def inject(flow=flow, path=path, sizes=sizes) -> None:
                for size in sizes:
                    self._send_packet(sim, queues, flow, path, 0, size)

            sim.schedule_at(flow.start_time, inject)

        sim.run()
        for flow in flows:
            if flow.num_packets and flow.packets_delivered \
                    != flow.num_packets:
                raise SimulationError(
                    f"flow {flow.src}->{flow.dst} lost packets "
                    f"({flow.packets_delivered}/{flow.num_packets})")
        return list(flows)

    def _segment(self, size: float) -> List[float]:
        full, rest = divmod(size, self.mtu)
        sizes = [self.mtu] * int(full)
        if rest > 1e-12:
            sizes.append(rest)
        return sizes or [size]

    def _send_packet(self, sim: Simulator, queues, flow: PacketFlow,
                     path: List[Link], hop: int, size: float) -> None:
        link = path[hop]

        def delivered() -> None:
            if hop + 1 < len(path):
                self._send_packet(sim, queues, flow, path, hop + 1, size)
            else:
                flow.packets_delivered += 1
                if flow.packets_delivered == flow.num_packets:
                    flow.finish_time = sim.now

        queues[link.ident].enqueue(size, delivered)


def packet_step_time(topology: Topology,
                     pairs: Sequence[Tuple[int, int, float]],
                     mtu: float = DEFAULT_MTU) -> float:
    """Makespan of one synchronous step under the packet model."""
    flows = [PacketFlow(src=s, dst=d, size=z) for s, d, z in pairs]
    PacketNetworkSimulator(topology, mtu).run(flows)
    return max((f.finish_time for f in flows), default=0.0)
