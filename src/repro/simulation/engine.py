"""Event-calendar core of the discrete-event simulator.

A deliberately small, fully deterministic engine:

* events are ``(time, sequence, callback)`` triples in a binary heap;
* ties in time break by insertion sequence, so runs are reproducible;
* cancelling is O(1) via tombstones.

The fluid network simulator and the schedule executors are built on top.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Callback = Callable[[], None]


class Event:
    """A scheduled callback; ``cancel()`` makes it a no-op."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callback) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callback] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when the event is popped."""
        self.cancelled = True
        self.callback = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """Priority queue of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callback) -> Event:
        """Schedule ``callback`` at absolute ``time``."""
        ev = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Drives an :class:`EventQueue` and owns the simulation clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule_at(self, time: float, callback: Callback) -> Event:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now - 1e-18:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self._now}")
        return self._queue.push(max(time, self._now), callback)

    def schedule_after(self, delay: float, callback: Callback) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback)

    def run(self, until: float | None = None,
            max_events: int = 50_000_000) -> float:
        """Process events until the queue drains (or ``until`` / event cap).

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            processed = 0
            while True:
                t = self._queue.peek_time()
                if t is None:
                    break
                if until is not None and t > until:
                    self._now = until
                    break
                ev = self._queue.pop()
                self._now = ev.time
                callback = ev.callback
                if callback is not None:
                    callback()
                processed += 1
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; likely a live-lock")
            return self._now
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)
