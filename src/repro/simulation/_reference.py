"""Frozen pre-refactor fluid engine — the parity oracle.

This module is a verbatim copy of the per-event implementation that
:mod:`repro.simulation.flows` / :mod:`repro.simulation.fluid` shipped
before the incremental engine rewrite: ``max_min_fair_rates`` rebuilt
the link index and the links x flows incidence matrix in Python loops at
*every* flow admission/completion event, and the event loop popped the
sorted pending list with ``pop(0)``.

It exists for two reasons and must not be "improved":

* the property-based parity suite asserts the incremental engine
  reproduces this implementation **bit-for-bit** (same rates, same
  event times, same results order);
* ``benchmarks/test_bench_fluid.py`` measures the incremental engine's
  speedup against it, which is the number recorded in
  ``BENCH_fluid.json`` and gated by CI.

Do not use it from production code paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..topology.base import Topology
from .flows import Flow, LinkId

#: Bytes of slack below which a flow counts as finished (guards float error).
_EPS_BYTES = 1e-9


def reference_max_min_fair_rates(
    flows: Sequence[Flow],
    capacities: Dict[LinkId, float],
) -> np.ndarray:
    """The pre-refactor solver: per-call index + incidence rebuild."""
    n = len(flows)
    rates = np.zeros(n)
    if n == 0:
        return rates

    # Collect the links actually used; ignore idle ones.
    used_links: List[LinkId] = []
    index_of: Dict[LinkId, int] = {}
    for f in flows:
        for lid in f.path:
            if lid not in index_of:
                if lid not in capacities:
                    raise SimulationError(f"flow crosses unknown link {lid!r}")
                index_of[lid] = len(used_links)
                used_links.append(lid)

    loopback = np.array([len(f.path) == 0 for f in flows])
    if not used_links:
        rates[:] = np.inf
        return rates

    m = len(used_links)
    # Incidence: A[l, f] = 1 iff flow f crosses link l.
    inc = np.zeros((m, n), dtype=bool)
    for j, f in enumerate(flows):
        for lid in f.path:
            inc[index_of[lid], j] = True

    cap = np.array([capacities[lid] for lid in used_links], dtype=float)
    if np.any(cap <= 0):
        raise SimulationError("link capacities must be positive")

    residual = cap.copy()
    active = ~loopback  # flows still being filled
    rates[loopback] = np.inf

    # Progressive filling: at most one link saturates per round, so the
    # loop runs at most m times.
    for _ in range(m + 1):
        # NB: cast before matmul — bool @ bool would OR, not count.
        counts = inc @ active.astype(np.float64)  # active flows per link
        hot = counts > 0
        if not np.any(hot):
            break
        fair = np.full(m, np.inf)
        fair[hot] = residual[hot] / counts[hot]
        bottleneck = float(fair.min())
        if not np.isfinite(bottleneck):  # pragma: no cover - defensive
            break
        # Grant the increment to every active flow.
        rates[active] += bottleneck
        residual -= counts * bottleneck
        residual = np.maximum(residual, 0.0)
        # Freeze flows on saturated links.
        saturated = hot & (fair <= bottleneck + 1e-15)
        frozen = np.any(inc[saturated][:, :], axis=0) & active
        if not np.any(frozen):  # pragma: no cover - defensive
            break
        active = active & ~frozen
        if not np.any(active):
            break
    else:  # pragma: no cover - defensive
        raise SimulationError("progressive filling failed to converge")

    return rates


class ReferenceFluidSimulator:
    """The pre-refactor :class:`FluidNetworkSimulator` event loop.

    Returns plain ``(src, dst, size, start_time, finish_time, tag)``
    tuples (the fields of ``FlowResult``) so the oracle carries no
    dependency on the live result class.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.capacities: Dict[LinkId, float] = {
            l.ident: l.capacity for l in topology.links}
        self._latencies: Dict[LinkId, float] = {
            l.ident: l.latency for l in topology.links}

    def make_flow(self, src: int, dst: int, size: float,
                  start_time: float = 0.0, tag: str = "") -> Flow:
        """Build a flow routed by the topology's deterministic routing."""
        path = tuple(l.ident for l in self.topology.path(src, dst))
        latency = sum(self._latencies[lid] for lid in path)
        flow = Flow(src=src, dst=dst, size=size, path=path,
                    latency=latency, tag=tag)
        flow.start_time = start_time
        return flow

    def run(self, flows: Sequence[Flow]
            ) -> List[Tuple[int, int, float, float, float, str]]:
        """The original O(events x rebuild) loop, verbatim."""
        for f in flows:
            f.remaining = float(f.size)
            f.finish_time = float("nan")

        pending = sorted(flows, key=lambda f: (f.start_time, f.src, f.dst))
        active: List[Flow] = []
        results: List[Tuple[int, int, float, float, float, str]] = []
        now = 0.0
        guard = 0
        max_rounds = 4 * len(flows) + 8

        while pending or active:
            guard += 1
            if guard > max_rounds:
                raise SimulationError(
                    "fluid simulation failed to converge "
                    f"({len(active)} active, {len(pending)} pending)")

            if not active:
                now = max(now, pending[0].start_time)
            # Admit everything that has started by `now`.
            while pending and pending[0].start_time <= now + 1e-18:
                active.append(pending.pop(0))

            rates = reference_max_min_fair_rates(active, self.capacities)
            for f, r in zip(active, rates):
                f.rate = float(r)

            # Earliest transmission completion among active flows.
            finish_dt = np.inf
            for f in active:
                if f.rate <= 0:
                    raise SimulationError(
                        f"flow {f.src}->{f.dst} starved (rate 0)")
                finish_dt = min(finish_dt, f.remaining / f.rate)
            next_admit_dt = (pending[0].start_time - now) if pending else np.inf
            dt = min(finish_dt, next_admit_dt)
            if not np.isfinite(dt):
                raise SimulationError("no progress possible")

            # Advance time; drain progress.
            now += dt
            still_active: List[Flow] = []
            for f in active:
                f.remaining -= f.rate * dt
                if f.remaining <= _EPS_BYTES:
                    f.remaining = 0.0
                    f.finish_time = now + f.latency
                    results.append((f.src, f.dst, f.size, f.start_time,
                                    f.finish_time, f.tag))
                else:
                    still_active.append(f)
            active = still_active

        return results

    def run_pairs(self, pairs: Iterable[Tuple[int, int, float]],
                  start_time: float = 0.0
                  ) -> List[Tuple[int, int, float, float, float, str]]:
        """Simulate ``(src, dst, size)`` tuples all starting together."""
        flows = [self.make_flow(s, d, z, start_time) for s, d, z in pairs]
        return self.run(flows)

    def step_time(self, pairs: Iterable[Tuple[int, int, float]]) -> float:
        """Makespan of a synchronous step of concurrent transfers."""
        results = self.run_pairs(pairs)
        return max((r[4] for r in results), default=0.0)
