"""Discrete-event / fluid network simulation (the SimGrid substitute).

The electrical baselines (E-Ring, RD) of the paper were evaluated with
SimGrid.  At the granularity the paper needs, SimGrid's TCP model is a
*fluid* model: active flows share link capacity max-min fairly and a flow
of S bytes over an uncongested path of rate B and latency L completes in
``L + S/B``.  This package implements exactly that:

* :mod:`~repro.simulation.engine` — a classic event-calendar simulator;
* :mod:`~repro.simulation.flows` — the max-min fair-share solver
  (progressive filling);
* :mod:`~repro.simulation.fluid` — the flow-level network simulator that
  advances flows between rate recomputations;
* :mod:`~repro.simulation.trace` — per-link utilization accounting.
"""

from .engine import Event, EventQueue, Simulator
from .flows import (CompiledFlowBatch, FillState, Flow,
                    SPARSE_FLOW_THRESHOLD, compile_flows, compile_paths,
                    have_sparse, max_min_fair_rates, progressive_fill,
                    resolve_backend, validate_allocation)
from .fluid import FlowResult, FluidNetworkSimulator, StepProfile
from .trace import LinkTrace, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Flow",
    "CompiledFlowBatch",
    "FillState",
    "SPARSE_FLOW_THRESHOLD",
    "compile_flows",
    "compile_paths",
    "have_sparse",
    "progressive_fill",
    "max_min_fair_rates",
    "resolve_backend",
    "validate_allocation",
    "FluidNetworkSimulator",
    "FlowResult",
    "StepProfile",
    "LinkTrace",
    "TraceRecorder",
]
