"""Flow-level ("fluid") network simulator — the SimGrid substitute.

Flows are admitted at their start times; whenever the active set changes,
the max-min fair allocation is recomputed; between changes every flow
progresses linearly at its allocated rate.  A flow that finishes
transmitting at time ``T`` is *delivered* at ``T + path latency``.

This reproduces, at the granularity the paper's evaluation needs, what
SimGrid's default TCP fluid model computes for the electrical network: an
uncongested flow of S bytes over a path of bottleneck B and latency L is
delivered at ``L + S/B``; congested flows share bottlenecks max-min
fairly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..topology.base import Topology
from .flows import Flow, LinkId, max_min_fair_rates
from .trace import TraceRecorder

#: Bytes of slack below which a flow counts as finished (guards float error).
_EPS_BYTES = 1e-9


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow: delivery time and achieved mean rate."""

    src: int
    dst: int
    size: float
    start_time: float
    finish_time: float
    tag: str = ""

    @property
    def duration(self) -> float:
        """Wall-clock from start to delivery."""
        return self.finish_time - self.start_time

    @property
    def mean_rate(self) -> float:
        """Average achieved rate in bytes/s (0 for instant flows)."""
        return self.size / self.duration if self.duration > 0 else float("inf")


class FluidNetworkSimulator:
    """Simulates a batch of fluid flows over a :class:`Topology`.

    Parameters
    ----------
    topology:
        Provides links (capacities, latencies) and default routing.
    keep_trace:
        Record per-link utilization into :attr:`trace`.
    """

    def __init__(self, topology: Topology, keep_trace: bool = False) -> None:
        self.topology = topology
        self.capacities: Dict[LinkId, float] = {
            l.ident: l.capacity for l in topology.links}
        self._latencies: Dict[LinkId, float] = {
            l.ident: l.latency for l in topology.links}
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(self.capacities) if keep_trace else None)

    # -- flow construction ----------------------------------------------------

    def make_flow(self, src: int, dst: int, size: float,
                  start_time: float = 0.0, tag: str = "") -> Flow:
        """Build a flow routed by the topology's deterministic routing."""
        path = tuple(l.ident for l in self.topology.path(src, dst))
        latency = sum(self._latencies[lid] for lid in path)
        flow = Flow(src=src, dst=dst, size=size, path=path,
                    latency=latency, tag=tag)
        flow.start_time = start_time
        return flow

    # -- simulation -------------------------------------------------------------

    def run(self, flows: Sequence[Flow]) -> List[FlowResult]:
        """Simulate ``flows`` to completion; returns per-flow results.

        The input list is consumed logically only — ``remaining`` fields are
        reset first so the same flow objects can be re-run.
        """
        for f in flows:
            f.remaining = float(f.size)
            f.finish_time = float("nan")

        pending = sorted(flows, key=lambda f: (f.start_time, f.src, f.dst))
        active: List[Flow] = []
        results: List[FlowResult] = []
        now = 0.0
        guard = 0
        max_rounds = 4 * len(flows) + 8

        while pending or active:
            guard += 1
            if guard > max_rounds:
                raise SimulationError(
                    "fluid simulation failed to converge "
                    f"({len(active)} active, {len(pending)} pending)")

            if not active:
                now = max(now, pending[0].start_time)
            # Admit everything that has started by `now`.
            while pending and pending[0].start_time <= now + 1e-18:
                active.append(pending.pop(0))

            rates = max_min_fair_rates(active, self.capacities)
            for f, r in zip(active, rates):
                f.rate = float(r)

            # Earliest transmission completion among active flows.
            finish_dt = np.inf
            for f in active:
                if f.rate <= 0:
                    raise SimulationError(
                        f"flow {f.src}->{f.dst} starved (rate 0)")
                finish_dt = min(finish_dt, f.remaining / f.rate)
            next_admit_dt = (pending[0].start_time - now) if pending else np.inf
            dt = min(finish_dt, next_admit_dt)
            if not np.isfinite(dt):
                raise SimulationError("no progress possible")

            if self.trace is not None and active:
                link_rates: Dict[LinkId, float] = {}
                for f in active:
                    for lid in f.path:
                        link_rates[lid] = link_rates.get(lid, 0.0) + f.rate
                self.trace.record_interval(now, dt, link_rates)

            # Advance time; drain progress.
            now += dt
            still_active: List[Flow] = []
            for f in active:
                f.remaining -= f.rate * dt
                if f.remaining <= _EPS_BYTES:
                    f.remaining = 0.0
                    f.finish_time = now + f.latency
                    results.append(FlowResult(
                        src=f.src, dst=f.dst, size=f.size,
                        start_time=f.start_time, finish_time=f.finish_time,
                        tag=f.tag))
                else:
                    still_active.append(f)
            active = still_active

        return results

    # -- conveniences -------------------------------------------------------------

    def run_pairs(self, pairs: Iterable[Tuple[int, int, float]],
                  start_time: float = 0.0) -> List[FlowResult]:
        """Simulate ``(src, dst, size)`` tuples all starting together."""
        flows = [self.make_flow(s, d, z, start_time) for s, d, z in pairs]
        return self.run(flows)

    def step_time(self, pairs: Iterable[Tuple[int, int, float]]) -> float:
        """Makespan of a synchronous step of concurrent transfers."""
        results = self.run_pairs(pairs)
        return max((r.finish_time for r in results), default=0.0)
