"""Flow-level ("fluid") network simulator — the SimGrid substitute.

Flows are admitted at their start times; whenever the active set changes,
the max-min fair allocation is recomputed; between changes every flow
progresses linearly at its allocated rate.  A flow that finishes
transmitting at time ``T`` is *delivered* at ``T + path latency``.

This reproduces, at the granularity the paper's evaluation needs, what
SimGrid's default TCP fluid model computes for the electrical network: an
uncongested flow of S bytes over a path of bottleneck B and latency L is
delivered at ``L + S/B``; congested flows share bottlenecks max-min
fairly.

The engine is **incremental** on three levels:

* each ``run()`` batch is compiled once into a
  :class:`~repro.simulation.flows.CompiledFlowBatch` (CSR flow→link
  rows, a dense or ``scipy.sparse`` incidence operator picked by batch
  size, capacity vector) and the whole event loop is driven with array
  operations;
* between consecutive events the solver **warm-starts**: the previous
  allocation's recorded trajectory
  (:class:`~repro.simulation.flows.FillState`) is passed back into
  :func:`~repro.simulation.flows.progressive_fill` together with the
  exact flows completed *and admitted* since, which replays every
  bottleneck round not invalidated by either delta and re-solves
  only from the first one that is — O(changed bottlenecks) per event
  instead of O(all bottlenecks), surviving mid-flight admissions;
* whole schedules execute through :meth:`FluidNetworkSimulator.run_schedule`,
  which canonicalizes and dedupes all steps up front (reusing the key
  for identical consecutive steps) and solves each distinct step
  pattern exactly once.

Results are bit-for-bit identical to the historical per-event
implementation (pinned against :mod:`repro.simulation._reference` by
the property suite), with one documented exception: loopback flows
(``src == dst``, empty path) are delivered instantly at admission
instead of hanging the old loop.

On top of the engine sits a **pattern-keyed step cache**
(:meth:`FluidNetworkSimulator.step_profile`): a synchronous step's
max-min dynamics depend only on the ``(src, dst)`` pattern and the
flows' *relative* sizes, and collective schedules repeat a handful of
patterns across dozens of steps, so the solved rate schedule is
memoized under a normalized key and rescaled per call.  Cached entries
are pure functions of their key — a hit returns exactly what the miss
path would compute — so warm and cold runs are byte-identical, which is
what lets :mod:`repro.core.cache_store` share them across processes.
An *admission policy* keeps enormous steps from bloating the cache:
patterns above ``pattern_cache_max_flows`` flows are solved but not
stored (counted in the cache's ``skipped`` statistic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..caching import CacheStats, LruCache
from ..errors import SimulationError, SimulationStallError
from ..topology.base import Topology
from .flows import (CompiledFlowBatch, compile_paths, compile_structure,
                    progressive_fill, Flow, LinkId)
from .trace import TraceRecorder

#: Event-loop safety cap: the loop may run at most
#: ``MAX_EVENT_ROUNDS_FACTOR * num_flows + 8`` events before
#: :class:`~repro.errors.SimulationStallError` is raised.  Every healthy
#: event admits or completes at least one flow, so 4 is generous; tests
#: shrink this to trip the guard deterministically.
MAX_EVENT_ROUNDS_FACTOR = 4

#: Bytes of slack below which a flow counts as finished (guards float error).
_EPS_BYTES = 1e-9

#: Default bound on memoized normalized rate schedules per simulator.
DEFAULT_PATTERN_CACHE_SIZE = 1024

#: Default admission bound: steps above this many flows are solved but
#: not memoized (pattern keys and rate schedules grow with the step).
DEFAULT_PATTERN_CACHE_MAX_FLOWS = 1024

#: Bound on compiled (routed) pattern structures per simulator.
_COMPILED_PATTERN_MAX = 256

#: Bound on memoized ``(path, latency)`` routes per simulator.
_ROUTE_CACHE_MAX = 16384


@dataclass(frozen=True)
class FlowResult:
    """Outcome of one flow: delivery time and achieved mean rate."""

    src: int
    dst: int
    size: float
    start_time: float
    finish_time: float
    tag: str = ""

    @property
    def duration(self) -> float:
        """Wall-clock from start to delivery."""
        return self.finish_time - self.start_time

    @property
    def mean_rate(self) -> float:
        """Average achieved rate in bytes/s (0 for instant flows)."""
        return self.size / self.duration if self.duration > 0 else float("inf")


@dataclass(frozen=True)
class StepProfile:
    """Solved timing of one synchronous step of concurrent transfers.

    ``finish_times`` are delivery times (transmission + path latency)
    aligned with ``pairs`` (the step's transfers in canonical sorted
    order); ``latencies`` are the per-pair path latencies.
    """

    pairs: Tuple[Tuple[int, int], ...]
    finish_times: np.ndarray
    latencies: np.ndarray

    @property
    def makespan(self) -> float:
        """Delivery time of the slowest transfer (0 for an empty step)."""
        return float(self.finish_times.max()) if self.finish_times.size \
            else 0.0

    @property
    def slowest(self) -> int:
        """Index (into ``pairs``) of the first slowest transfer
        (-1 for an empty step)."""
        if not self.finish_times.size:
            return -1
        return int(np.argmax(self.finish_times))

    @property
    def propagation(self) -> float:
        """Path latency of the slowest transfer (0 for an empty step)."""
        return float(self.latencies[self.slowest]) \
            if self.finish_times.size else 0.0


def _empty_profile() -> StepProfile:
    return StepProfile(pairs=(), finish_times=np.zeros(0),
                       latencies=np.zeros(0))


class _CompiledPattern:
    """Routed structure of one ``(src, dst)`` step pattern."""

    __slots__ = ("batch", "latencies")

    def __init__(self, batch: CompiledFlowBatch,
                 latencies: np.ndarray) -> None:
        self.batch = batch
        self.latencies = latencies


class FluidNetworkSimulator:
    """Simulates a batch of fluid flows over a :class:`Topology`.

    Parameters
    ----------
    topology:
        Provides links (capacities, latencies) and default routing.
    keep_trace:
        Record per-link utilization into :attr:`trace`.  Tracing
        disables the step-cache fast path (the trace needs the real
        byte counts), so traced runs always use the raw engine.
    pattern_cache:
        Memoize normalized rate schedules per step pattern (identical
        results either way).
    pattern_cache_size:
        Bound on memoized rate schedules (LRU eviction).
    pattern_cache_max_flows:
        Admission bound: steps with more flows than this are solved but
        not memoized (``None`` admits everything).
    backend:
        Incidence backend for compiled batches — ``"auto"`` (default;
        scipy CSR at/above
        :data:`~repro.simulation.flows.SPARSE_FLOW_THRESHOLD` flows,
        dense below), ``"dense"``, or ``"sparse"``.  Identical results
        either way; ``"sparse"`` degrades to dense without scipy.
    warm_start:
        Warm-start consecutive event solves from the previous
        allocation's recorded trajectory (identical results either
        way; disable only for benchmarking the cold solver).
    compile_cache:
        Memoize the capacity-free
        :class:`~repro.simulation.flows.FlowBatchStructure` of each
        step pattern.  Keyed per topology *shape*
        (:meth:`~repro.topology.base.Topology.shape_signature`), so
        substrates share one cache across simulators whose topologies
        differ only in capacities/latencies — a bandwidth sweep
        compiles each pattern once and rebinds it per cell.
    """

    def __init__(self, topology: Topology, keep_trace: bool = False,
                 pattern_cache: bool = True,
                 pattern_cache_size: int = DEFAULT_PATTERN_CACHE_SIZE,
                 pattern_cache_max_flows: Optional[int]
                 = DEFAULT_PATTERN_CACHE_MAX_FLOWS,
                 backend: Optional[str] = None,
                 warm_start: bool = True,
                 compile_cache: bool = True,
                 ) -> None:
        self.topology = topology
        self.capacities: Dict[LinkId, float] = {
            l.ident: l.capacity for l in topology.links}
        self._latencies: Dict[LinkId, float] = {
            l.ident: l.latency for l in topology.links}
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(self.capacities) if keep_trace else None)
        self._pattern_cache: Optional[LruCache] = (
            LruCache(pattern_cache_size,
                     admit_cost_bound=pattern_cache_max_flows)
            if pattern_cache else None)
        self._compiled_patterns = LruCache(_COMPILED_PATTERN_MAX)
        self._compile_cache: Optional[LruCache] = (
            LruCache(_COMPILED_PATTERN_MAX,
                     admit_cost_bound=pattern_cache_max_flows)
            if compile_cache else None)
        self._routes = LruCache(_ROUTE_CACHE_MAX)
        self._backend = backend
        self._warm_start = warm_start

    @property
    def backend(self) -> Optional[str]:
        """The configured incidence backend (``None`` = auto)."""
        return self._backend

    # -- flow construction ----------------------------------------------------

    def _route(self, src: int, dst: int) -> Tuple[Tuple[LinkId, ...], float]:
        """Memoized ``(link idents, path latency)`` per ``(src, dst)``.

        A second, simulator-local layer over ``Topology.routed_path``
        (which returns Link objects): this one stores exactly what the
        hot path needs.  The simulator snapshots capacities/latencies
        at construction, so — like those — it assumes the topology is
        not mutated under a live simulator.
        """
        key = (src, dst)
        route = self._routes.get(key)
        if route is None:
            path = tuple(l.ident
                         for l in self.topology.routed_path(src, dst))
            route = (path, sum(self._latencies[lid] for lid in path))
            self._routes.put(key, route)
        return route

    def make_flow(self, src: int, dst: int, size: float,
                  start_time: float = 0.0, tag: str = "") -> Flow:
        """Build a flow routed by the topology's deterministic routing."""
        path, latency = self._route(src, dst)
        flow = Flow(src=src, dst=dst, size=size, path=path,
                    latency=latency, tag=tag)
        flow.start_time = start_time
        return flow

    # -- simulation -------------------------------------------------------------

    def run(self, flows: Sequence[Flow],
            rate_log: Optional[List[Tuple[float, np.ndarray, np.ndarray]]]
            = None) -> List[FlowResult]:
        """Simulate ``flows`` to completion; returns per-flow results.

        The input list is consumed logically only — ``remaining`` fields
        are reset first so the same flow objects can be re-run.  When
        ``rate_log`` is a list, one ``(time, active_indices, rates)``
        entry is appended per allocation event (indices refer to the
        admission-sorted flow order) — the hook the property suite uses
        to validate every intermediate allocation.
        """
        if not flows:
            return []
        for f in flows:
            f.remaining = float(f.size)
            f.finish_time = float("nan")

        order = sorted(range(len(flows)),
                       key=lambda i: (flows[i].start_time, flows[i].src,
                                      flows[i].dst))
        batch_flows = [flows[i] for i in order]
        batch = compile_paths([f.path for f in batch_flows],
                              self.capacities, backend=self._backend)
        sizes = np.array([f.size for f in batch_flows], dtype=float)
        starts = np.array([f.start_time for f in batch_flows], dtype=float)
        lats = np.array([f.latency for f in batch_flows], dtype=float)

        completion, tx_times, final_rates = self._drive(
            batch, batch_flows, sizes, starts,
            trace=self.trace, rate_log=rate_log)

        results: List[FlowResult] = []
        for i in completion:
            f = batch_flows[i]
            f.remaining = 0.0
            f.rate = float(final_rates[i])
            f.finish_time = float(tx_times[i] + lats[i])
            results.append(FlowResult(
                src=f.src, dst=f.dst, size=f.size,
                start_time=f.start_time, finish_time=f.finish_time,
                tag=f.tag))
        return results

    def _drive(self, batch: CompiledFlowBatch,
               batch_flows: Optional[Sequence[Flow]],
               sizes: np.ndarray, starts: np.ndarray,
               trace: Optional[TraceRecorder] = None,
               rate_log: Optional[List] = None,
               ) -> Tuple[List[int], np.ndarray, np.ndarray]:
        """The vectorized event loop over a compiled batch.

        Flows must already be in admission order (ascending
        ``(start, src, dst)``).  Returns ``(completion_order,
        tx_finish_times, last_rates)`` where ``tx_finish_times`` are
        *transmission* completions (no latency).  ``batch_flows`` is
        only used to phrase error messages (``None`` for the
        pattern-cache path, where pairs name the flows).

        Consecutive allocations warm-start from the previous event's
        recorded :class:`~repro.simulation.flows.FillState` across
        both completions *and* admissions: the exact removed/admitted
        indices are handed to :func:`progressive_fill`, which replays
        the recorded rounds below the first one the delta touches
        (identical results either way — the record replay is
        bit-for-bit, see :func:`progressive_fill`).
        """
        n = batch.num_flows
        remaining = sizes.astype(float, copy=True)
        tx_times = np.full(n, np.nan)
        last_rates = np.zeros(n)
        active = np.zeros(n, dtype=bool)
        active_count = 0
        cursor = 0  # admission index into the sorted batch
        completion: List[int] = []
        now = 0.0
        guard = 0
        max_rounds = MAX_EVENT_ROUNDS_FACTOR * n + 8
        warm_start = self._warm_start
        fill_state = None
        completed_since = None  # flows done since the recorded solve
        no_replay = 0  # consecutive completion events that replayed 0 rounds

        def flow_name(i: int) -> str:
            if batch_flows is not None:
                f = batch_flows[i]
                return f"{f.src}->{f.dst}"
            return f"#{i}"

        while cursor < n or active_count:
            guard += 1
            if guard > max_rounds:
                stuck = tuple(flow_name(i) for i in np.nonzero(active)[0])
                raise SimulationStallError(
                    f"fluid simulation failed to converge at t={now!r} "
                    f"({active_count} active, {n - cursor} pending; "
                    f"stuck flows: {', '.join(stuck) or '<none>'})",
                    now=now, stuck_flows=stuck)

            if not active_count:
                now = max(now, starts[cursor])
            # Admit everything that has started by `now`.
            admitted: List[int] = []
            while cursor < n and starts[cursor] <= now + 1e-18:
                i = cursor
                if batch.loopback[i]:
                    # Empty path: delivered instantly (the historical
                    # loop hung on these; see module docstring).
                    tx_times[i] = now
                    last_rates[i] = np.inf
                    completion.append(i)
                else:
                    active[i] = True
                    active_count += 1
                    admitted.append(i)
                cursor += 1
            if not active_count:
                continue  # only loopbacks admitted; jump to next start

            added_since = (np.asarray(admitted, dtype=np.intp)
                           if admitted else None)
            if warm_start:
                rates, fill_state = progressive_fill(
                    batch, active, warm=fill_state,
                    removed=completed_since, added=added_since,
                    record=True)
                # Adaptive warm-starting: a workload whose events
                # always invalidate round 0 (e.g. a uniform exchange
                # saturating every link at once) can never replay —
                # stop paying for the records after two consecutive
                # fruitless delta events.  Purely a cost knob:
                # cold solves are the definitionally identical path.
                had_delta = added_since is not None or (
                    completed_since is not None and completed_since.size)
                if had_delta:
                    if fill_state is not None and fill_state.replayed == 0:
                        no_replay += 1
                        if no_replay >= 2:
                            warm_start = False
                            fill_state = None
                    else:
                        no_replay = 0
            else:
                rates = progressive_fill(batch, active)
            act_idx = np.nonzero(active)[0]
            act_rates = rates[act_idx]
            last_rates[act_idx] = act_rates

            if float(act_rates.min()) <= 0:
                i = act_idx[int(np.argmax(act_rates <= 0))]
                raise SimulationError(
                    f"flow {flow_name(i)} starved (rate 0)")

            # Earliest transmission completion among active flows.
            rem_act = remaining[act_idx]
            finish_dt = float((rem_act / act_rates).min())
            next_admit_dt = (starts[cursor] - now) if cursor < n else np.inf
            dt = min(finish_dt, next_admit_dt)
            if not np.isfinite(dt):
                raise SimulationError("no progress possible")

            if rate_log is not None:
                rate_log.append((now, act_idx.copy(), act_rates.copy()))

            if trace is not None:
                # Flow-major accumulation (np.add.at applies updates in
                # index order), matching the historical per-flow sums.
                sel = active[batch.flow_of]
                flat = batch.flow_links[sel]
                link_rates = np.zeros(batch.num_links)
                np.add.at(link_rates, flat, rates[batch.flow_of[sel]])
                touched = np.zeros(batch.num_links, dtype=bool)
                touched[flat] = True
                trace.record_interval(now, dt, {
                    batch.link_ids[j]: link_rates[j]
                    for j in np.nonzero(touched)[0]})

            # Advance time; drain progress.
            now += dt
            rem_act = rem_act - act_rates * dt
            remaining[act_idx] = rem_act
            done = act_idx[rem_act <= _EPS_BYTES]
            completed_since = done
            if done.size:
                remaining[done] = 0.0
                tx_times[done] = now
                active[done] = False
                active_count -= int(done.size)
                completion.extend(int(i) for i in done)

        return completion, tx_times, last_rates

    # -- pattern-keyed step cache -------------------------------------------

    def _compiled_pattern(self, pattern: Tuple[Tuple[int, int], ...],
                          ) -> _CompiledPattern:
        """Routed + compiled structure for a step pattern (memoized).

        Two layers: the per-simulator bound batch (pattern →
        :class:`_CompiledPattern`, capacities baked in) over the
        shareable capacity-free structure cache (pattern →
        :class:`~repro.simulation.flows.FlowBatchStructure`, keyed per
        topology shape).  A structure hit skips routing and the
        Python-side compile loop entirely — only the bind (capacity
        vector + latency sums) runs per simulator.
        """
        compiled = self._compiled_patterns.get(pattern)
        if compiled is None:
            structure = (self._compile_cache.get(pattern)
                         if self._compile_cache is not None else None)
            if structure is None:
                structure = compile_structure(
                    [self._route(src, dst)[0] for src, dst in pattern])
                if self._compile_cache is not None:
                    # Admission policy: enormous patterns are compiled
                    # but not memoized (`skipped` counts them).
                    self._compile_cache.put(pattern, structure,
                                            cost=len(pattern))
            compiled = _CompiledPattern(
                batch=structure.bind(self.capacities,
                                     backend=self._backend),
                latencies=structure.path_latencies(self._latencies))
            self._compiled_patterns.put(pattern, compiled)
        return compiled

    @staticmethod
    def _canon_step(pairs: Iterable[Tuple[int, int, float]],
                    ) -> Optional[Tuple[Tuple, float]]:
        """Canonical ``(cache key, reference size)`` of one step.

        The step is sorted by ``(src, dst, size)``; the key is the pair
        pattern plus the sizes normalized by the largest transfer (the
        max-min dynamics depend only on those ratios).  ``None`` for an
        empty step.
        """
        step = sorted((int(s), int(d), float(z)) for s, d, z in pairs)
        for s, d, z in step:
            if z <= 0:
                raise SimulationError(f"flow {s}->{d} size must be > 0")
        if not step:
            return None
        pattern = tuple((s, d) for s, d, _ in step)
        sizes = np.array([z for _, _, z in step], dtype=float)
        s_ref = float(sizes.max())
        ratios = sizes / s_ref
        return (pattern, tuple(ratios)), s_ref

    def _profile_for(self, key: Tuple, s_ref: float) -> StepProfile:
        """Solve (or fetch) one canonical step and rescale it."""
        pattern, ratios = key
        compiled = self._compiled_pattern(pattern)
        tx_hat = (self._pattern_cache.get(key)
                  if self._pattern_cache is not None else None)
        if tx_hat is None:
            _, tx_hat, _ = self._drive(
                compiled.batch, None,
                np.asarray(ratios, dtype=float),
                np.zeros(len(pattern)))
            if self._pattern_cache is not None:
                # Admission policy: enormous steps are solved but not
                # memoized (`skipped` counts them).
                self._pattern_cache.put(key, tx_hat, cost=len(pattern))
        finish = tx_hat * s_ref + compiled.latencies
        return StepProfile(pairs=pattern, finish_times=finish,
                           latencies=compiled.latencies)

    def step_profile(self, pairs: Iterable[Tuple[int, int, float]]
                     ) -> StepProfile:
        """Solved timing of a synchronous step of concurrent transfers.

        The step is canonicalized (sorted by ``(src, dst, size)``) and
        solved through the pattern cache: the max-min dynamics of a
        step depend only on the pair pattern and the *relative* sizes,
        so the normalized transmission times are memoized under
        ``(pattern, size-ratios)`` and rescaled by the step's largest
        transfer.  Both the miss and the hit path go through the same
        normalization, so results never depend on cache history.
        """
        canon = self._canon_step(pairs)
        if canon is None:
            return _empty_profile()
        return self._profile_for(*canon)

    def step_time(self, pairs: Iterable[Tuple[int, int, float]]) -> float:
        """Makespan of a synchronous step of concurrent transfers."""
        if self.trace is not None:
            results = self.run_pairs(pairs)
            return max((r.finish_time for r in results), default=0.0)
        return self.step_profile(pairs).makespan

    def run_schedule(self, steps: Sequence[Iterable[Tuple[int, int, float]]]
                     ) -> List[StepProfile]:
        """Fused whole-schedule execution: one profile per step.

        All steps are canonicalized up front — identical *consecutive*
        steps reuse the previous step's normalized key outright (ring
        and torus schedules repeat one pattern 2(N-1) times in a row) —
        then each distinct ``(pattern, ratios, scale)`` is solved
        exactly once and its :class:`StepProfile` shared across
        repeats, eliminating the per-step compile and Python dispatch
        the per-step path pays.  For cache-admitted patterns the
        counters advance exactly as the per-step path would (repeats
        still probe), so warm/cold observability is unchanged; an
        admission-*skipped* pattern is solved once per schedule rather
        than once per repeat, so its ``skipped`` count advances once
        (the per-step path re-solves and re-skips every repeat).
        Traced simulators fall back to the raw engine per step (the
        trace needs real byte accounting).
        """
        steps = list(steps)
        if self.trace is not None:
            return [self._raw_profile(step) for step in steps]

        # Pass 1: canonicalize, hoisting the key of repeated steps.
        entries: List[Optional[Tuple[Tuple, float]]] = []
        prev_raw: Optional[List[Tuple[int, int, float]]] = None
        prev_entry: Optional[Tuple[Tuple, float]] = None
        for step in steps:
            raw = [(int(s), int(d), float(z)) for s, d, z in step]
            if prev_raw is not None and raw == prev_raw:
                entries.append(prev_entry)
                continue
            prev_raw = raw
            prev_entry = self._canon_step(raw)
            entries.append(prev_entry)

        # Pass 2: solve each distinct (key, scale) once; share profiles.
        made: Dict[Tuple, StepProfile] = {}
        profiles: List[StepProfile] = []
        for entry in entries:
            if entry is None:
                profiles.append(_empty_profile())
                continue
            prof = made.get(entry)
            if prof is None:
                prof = self._profile_for(*entry)
                made[entry] = prof
            elif self._pattern_cache is not None:
                # Counter/LRU parity with the per-step path: a repeat
                # is a cache probe there, so it is one here too.
                self._pattern_cache.get(entry[0])
            profiles.append(prof)
        return profiles

    def step_time_many(self, steps: Sequence[Iterable[Tuple[int, int, float]]]
                       ) -> List[float]:
        """Makespans of a whole schedule's synchronous steps.

        The batch entry point substrates use; see :meth:`run_schedule`
        for the fused execution it rides on.
        """
        if self.trace is not None:
            return [self.step_time(step) for step in steps]
        return [p.makespan for p in self.run_schedule(steps)]

    def _raw_profile(self, pairs: Iterable[Tuple[int, int, float]]
                     ) -> StepProfile:
        """A step profile through the raw (traced) engine."""
        step = sorted((int(s), int(d), float(z)) for s, d, z in pairs)
        for s, d, z in step:
            if z <= 0:
                raise SimulationError(f"flow {s}->{d} size must be > 0")
        if not step:
            return _empty_profile()
        flows = [self.make_flow(s, d, z) for s, d, z in step]
        self.run(flows)
        finish = np.array([f.finish_time for f in flows])
        lats = np.array([f.latency for f in flows])
        return StepProfile(pairs=tuple((s, d) for s, d, _ in step),
                           finish_times=finish, latencies=lats)

    # -- cache management ---------------------------------------------------

    def pattern_cache_info(self) -> CacheStats:
        """Current pattern-cache counters (zeros when disabled)."""
        if self._pattern_cache is None:
            return CacheStats()
        return self._pattern_cache.stats()

    def clear_pattern_cache(self) -> None:
        """Drop memoized rate schedules, compiled patterns and
        compiled structures."""
        if self._pattern_cache is not None:
            self._pattern_cache.clear()
        if self._compile_cache is not None:
            self._compile_cache.clear()
        self._compiled_patterns.clear()

    def cache_namespace(self) -> str:
        """Persistent-store namespace of this simulator's pattern cache.

        Derived from the topology signature, so any simulator over an
        identical topology — in any process — shares the entries.
        """
        return f"fluid-pattern/{self.topology.signature()}"

    def compile_cache_namespace(self) -> str:
        """Persistent-store namespace of this simulator's compile cache.

        Derived from the topology *shape* signature — capacities and
        latencies excluded — because routed structures are pure
        functions of which links exist, so every bandwidth/latency
        variant of one topology shares the entries (this is what lets
        a sweep compile one batch family per pattern).
        """
        return f"fluid-compile/{self.topology.shape_signature()}"

    def compile_cache_info(self) -> CacheStats:
        """Current compile-cache counters (zeros when disabled)."""
        if self._compile_cache is None:
            return CacheStats()
        return self._compile_cache.stats()

    @property
    def compile_cache(self) -> Optional[LruCache]:
        """The live compiled-structure cache (``None`` when disabled)."""
        return self._compile_cache

    def use_compile_cache(self, cache: LruCache) -> None:
        """Adopt ``cache`` as this simulator's compile cache.

        Substrates share one cache object between simulators whose
        topologies have the same :meth:`compile_cache_namespace` —
        entries are interchangeable there by construction (the bind
        step applies each simulator's own capacities).
        """
        self._compile_cache = cache

    def export_pattern_cache(self) -> Dict:
        """Snapshot of the memoized rate schedules (for disk spilling)."""
        if self._pattern_cache is None:
            return {}
        return self._pattern_cache.export_items()

    def warm_pattern_cache(self, items: Dict) -> int:
        """Preload memoized rate schedules (counters untouched)."""
        if self._pattern_cache is None or not items:
            return 0
        return self._pattern_cache.warm(items)

    @property
    def pattern_cache(self) -> Optional[LruCache]:
        """The live pattern cache (``None`` when disabled)."""
        return self._pattern_cache

    def use_pattern_cache(self, cache: LruCache) -> None:
        """Adopt ``cache`` as this simulator's pattern cache.

        Substrates share one cache object between simulators whose
        topologies have the same :meth:`cache_namespace` — entries are
        interchangeable there by construction.  The adopted cache's
        admission bound wins over this simulator's configured one.
        """
        self._pattern_cache = cache

    # -- conveniences -------------------------------------------------------------

    def run_pairs(self, pairs: Iterable[Tuple[int, int, float]],
                  start_time: float = 0.0) -> List[FlowResult]:
        """Simulate ``(src, dst, size)`` tuples all starting together."""
        flows = [self.make_flow(s, d, z, start_time) for s, d, z in pairs]
        return self.run(flows)
