"""Max-min fair bandwidth sharing (the heart of the fluid model).

Given a set of flows, each pinned to a path (a set of link ids), and link
capacities, compute the max-min fair rate allocation by *progressive
filling*: raise every unfrozen flow's rate uniformly until some link
saturates; freeze the flows crossing it; repeat.  This is the allocation
SimGrid's default TCP model converges to at this granularity, and is the
textbook fluid model for congestion-controlled traffic.

The solver is split into a **compile** step and a **fill** step so the
fluid event loop never rebuilds Python-side structures per event:

* :func:`compile_paths` turns a batch of flow paths into a
  :class:`CompiledFlowBatch` — a CSR flow→link index, a links x flows
  incidence operator (dense matrix or ``scipy.sparse`` CSR, see
  *backends* below), and the link capacity vector — built exactly once
  per ``run()`` batch;
* :func:`progressive_fill` solves max-min over the compiled structure
  restricted to an *active mask*, and can **warm-start** from the
  previous event's recorded solve (:class:`FillState`): when the active
  set only *shrank* (flows completed), every filling round up to the
  first bottleneck touched by a completed flow is *replayed* from the
  record in O(links) vector ops instead of re-solved — the incremental
  active-set solver the event loop rides on.

Incidence backends
------------------
``compile_paths(..., backend=...)`` selects how per-round link counts
and freeze detection are computed:

* ``"dense"`` — a dense links x flows float matrix (one BLAS matvec per
  round); the right call below a few hundred flows;
* ``"sparse"`` — a ``scipy.sparse`` CSR matrix (O(nnz) per round); the
  right call for very large flow batches, and what ``"auto"`` picks at
  or above :data:`SPARSE_FLOW_THRESHOLD` flows when scipy is
  importable.  When scipy is absent, ``"sparse"``/``"auto"`` degrade
  gracefully to dense.

Both backends are *numerically interchangeable*: the incidence is 0/1
and the filling mask is 0/1, so per-round link counts are exact small
integers no matter how the products are summed.  The documented
contract is agreement within 1e-12 relative tolerance; in practice the
backends agree bit-for-bit (and the property suite pins exactly that).

:func:`max_min_fair_rates` keeps the historical one-shot API on top
(and the property suite pins it bit-for-bit against the frozen
pre-refactor implementation in ``repro.simulation._reference``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SimulationError

try:  # gated dependency: the sparse backend needs scipy
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised via monkeypatch
    _scipy_sparse = None

LinkId = Hashable

#: Flow count at which ``backend="auto"`` switches to scipy CSR (kept
#: dense below it: BLAS on small dense blocks beats sparse overhead).
SPARSE_FLOW_THRESHOLD = 512


def have_sparse() -> bool:
    """Whether the scipy-backed sparse incidence backend is available."""
    return _scipy_sparse is not None


def resolve_backend(backend: Optional[str], num_flows: int) -> str:
    """The concrete backend (``"dense"``/``"sparse"``) for a batch.

    ``None``/``"auto"`` select sparse at or above
    :data:`SPARSE_FLOW_THRESHOLD` flows when scipy is importable;
    an explicit ``"sparse"`` without scipy degrades to dense (the
    results are identical either way, only the speed differs).
    """
    if backend in (None, "auto"):
        if _scipy_sparse is not None and num_flows >= SPARSE_FLOW_THRESHOLD:
            return "sparse"
        return "dense"
    if backend == "dense":
        return "dense"
    if backend == "sparse":
        return "sparse" if _scipy_sparse is not None else "dense"
    raise SimulationError(
        f"unknown incidence backend {backend!r} "
        f"(expected 'auto', 'dense' or 'sparse')")


@dataclass
class Flow:
    """A fluid flow: ``size`` bytes over the links in ``path``.

    ``remaining`` tracks progress while the simulator advances time;
    ``rate`` is (re)assigned after every allocation round.
    """

    src: int
    dst: int
    size: float
    path: Tuple[LinkId, ...]
    latency: float = 0.0
    tag: str = ""
    remaining: float = field(init=False)
    rate: float = field(default=0.0, init=False)
    start_time: float = field(default=0.0, init=False)
    finish_time: float = field(default=float("nan"), init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError(
                f"flow {self.src}->{self.dst} size must be > 0")
        if not self.path and self.src != self.dst:
            raise SimulationError(
                f"flow {self.src}->{self.dst} has an empty path")
        self.remaining = float(self.size)


class CompiledFlowBatch:
    """One batch of flow paths compiled for repeated max-min solves.

    Everything the per-event hot loop needs, precomputed as arrays:

    * ``link_ids`` / ``cap`` — the links actually used by the batch (in
      first-use order, matching the historical solver) and their
      capacities;
    * ``flow_ptr`` / ``flow_links`` — CSR rows: flow ``j`` crosses
      ``flow_links[flow_ptr[j]:flow_ptr[j+1]]``;
    * ``flow_of`` — ``flow_links``'s owning flow per entry (for
      flow-major trace accumulation with ``np.add.at``);
    * ``inc_flows`` / ``inc_links`` — the *deduplicated* (flow, link)
      incidence pairs backing the counting operators (a path crossing a
      link twice still counts it once, as the incidence matrix does);
    * ``backend`` — ``"dense"`` or ``"sparse"``: how :meth:`link_counts`
      and :meth:`flows_on` are computed (identical values either way);
    * ``loopback`` — flows with an empty path (delivered instantly).
    """

    __slots__ = ("link_ids", "cap", "flow_ptr", "flow_links", "flow_of",
                 "inc_flows", "inc_links", "inc_ptr", "loopback",
                 "any_loopback", "backend", "_inc", "_inc_sp",
                 "_lnk_ptr", "_lnk_flows")

    def __init__(self, link_ids: Tuple[LinkId, ...], cap: np.ndarray,
                 flow_ptr: np.ndarray, flow_links: np.ndarray,
                 flow_of: np.ndarray, inc_flows: np.ndarray,
                 inc_links: np.ndarray, loopback: np.ndarray,
                 backend: str = "dense") -> None:
        self.link_ids = link_ids
        self.cap = cap
        self.flow_ptr = flow_ptr
        self.flow_links = flow_links
        self.flow_of = flow_of
        self.inc_flows = inc_flows
        self.inc_links = inc_links
        # inc_* entries are flow-major sorted; per-flow pointers let
        # the warm-start path slice a removed flow's links directly.
        n = len(flow_ptr) - 1
        self.inc_ptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(np.bincount(inc_flows, minlength=n),
                  out=self.inc_ptr[1:])
        self.loopback = loopback
        self.any_loopback = bool(loopback.any())
        self.backend = backend
        self._inc: Optional[np.ndarray] = None
        self._inc_sp = None
        self._lnk_ptr: Optional[np.ndarray] = None
        self._lnk_flows: Optional[np.ndarray] = None
        if backend == "sparse":
            self._inc_sp = _scipy_sparse.csr_matrix(
                (np.ones(len(inc_links), dtype=np.float64),
                 (inc_links, inc_flows)),
                shape=(self.num_links, self.num_flows))
            # Link-major (CSC-style) incidence for freeze detection:
            # flows crossing link ``l`` are
            # ``lnk_flows[lnk_ptr[l]:lnk_ptr[l+1]]``.
            order = np.argsort(inc_links, kind="stable")
            self._lnk_flows = inc_flows[order]
            lnk_ptr = np.zeros(self.num_links + 1, dtype=np.intp)
            np.cumsum(np.bincount(inc_links, minlength=self.num_links),
                      out=lnk_ptr[1:])
            self._lnk_ptr = lnk_ptr
        else:
            self._inc = self._build_dense()

    def _build_dense(self) -> np.ndarray:
        inc = np.zeros((self.num_links, self.num_flows), dtype=np.float64)
        if self.inc_links.size:
            inc[self.inc_links, self.inc_flows] = 1.0
        return inc

    @property
    def num_flows(self) -> int:
        """Flows in the batch."""
        return len(self.flow_ptr) - 1

    @property
    def num_links(self) -> int:
        """Distinct links used by the batch."""
        return len(self.link_ids)

    @property
    def inc(self) -> np.ndarray:
        """The dense links x flows incidence (built on demand under the
        sparse backend; always materialized under the dense one)."""
        if self._inc is None:
            self._inc = self._build_dense()
        return self._inc

    # -- backend-dispatched counting operators ------------------------------

    def link_counts(self, filling_f: np.ndarray) -> np.ndarray:
        """Filling flows per link (exact integers in float64)."""
        if self._inc_sp is not None:
            return self._inc_sp @ filling_f
        return self._inc @ filling_f

    def flows_on(self, link_idx: np.ndarray,
                 filling: np.ndarray) -> np.ndarray:
        """Mask of ``filling`` flows crossing any link in ``link_idx``.

        Pure set membership (no float arithmetic), so both backends
        return the identical mask: the dense path reduces incidence
        rows, the sparse path gathers the links' flow lists from the
        link-major index (CSR row slicing is far too slow here).
        """
        if self._lnk_ptr is not None:
            starts = self._lnk_ptr[link_idx]
            lens = self._lnk_ptr[link_idx + 1] - starts
            total = int(lens.sum())
            on = np.zeros(self.num_flows, dtype=bool)
            if total:
                # Multi-range gather: absolute positions of every
                # (link, flow) entry under the saturated links.
                offs = np.arange(total) \
                    - np.repeat(np.cumsum(lens) - lens, lens)
                on[self._lnk_flows[np.repeat(starts, lens) + offs]] = True
        else:
            on = np.add.reduce(self._inc[link_idx], axis=0) > 0.0
        return on & filling


class FlowBatchStructure:
    """The capacity-free half of a compiled flow batch.

    Everything :func:`compile_paths` derives from the *paths alone* —
    the first-use link index, the CSR rows, the deduplicated incidence
    pairs, the loopback mask — with the capacity vector and the
    backend operators factored out into :meth:`bind`.  This is the
    unit the cross-cell compile cache shares: a sweep re-running one
    step pattern over many capacity (bandwidth) cells compiles the
    structure once and rebinds it per cell, and the object pickles
    cleanly (backend operator prototypes are dropped, rebuilt on first
    bind) so a :class:`~repro.core.cache_store.CacheStore` can carry
    it across processes.
    """

    __slots__ = ("link_ids", "flow_ptr", "flow_links", "flow_of",
                 "inc_flows", "inc_links", "loopback", "_protos")

    def __init__(self, link_ids: Tuple[LinkId, ...], flow_ptr: np.ndarray,
                 flow_links: np.ndarray, flow_of: np.ndarray,
                 inc_flows: np.ndarray, inc_links: np.ndarray,
                 loopback: np.ndarray) -> None:
        self.link_ids = link_ids
        self.flow_ptr = flow_ptr
        self.flow_links = flow_links
        self.flow_of = flow_of
        self.inc_flows = inc_flows
        self.inc_links = inc_links
        self.loopback = loopback
        # Per-backend bound prototypes: the incidence operators depend
        # only on the structure, so every bind of the same backend
        # shares them (they are read-only in the solver).
        self._protos: Dict[str, CompiledFlowBatch] = {}

    def __getstate__(self) -> Dict[str, object]:
        return {slot: getattr(self, slot)
                for slot in self.__slots__ if slot != "_protos"}

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._protos = {}

    @property
    def num_flows(self) -> int:
        """Flows in the structure."""
        return len(self.flow_ptr) - 1

    @property
    def num_links(self) -> int:
        """Distinct links crossed by the structure."""
        return len(self.link_ids)

    def path_latencies(self, latency_of: Dict[LinkId, float]) -> np.ndarray:
        """Per-flow path latency under ``latency_of`` (with multiplicity,
        matching a plain sum over each path's links)."""
        try:
            lat = np.array([latency_of[lid] for lid in self.link_ids],
                           dtype=float)
        except KeyError as exc:
            raise SimulationError(
                f"flow crosses unknown link {exc.args[0]!r}") from None
        out = np.zeros(self.num_flows)
        np.add.at(out, self.flow_of, lat[self.flow_links])
        return out

    def bind(self, capacities: Dict[LinkId, float],
             backend: Optional[str] = None) -> CompiledFlowBatch:
        """A :class:`CompiledFlowBatch` of this structure under
        ``capacities``.

        The first bind per concrete backend builds the incidence
        operators; later binds reuse them and only materialize the new
        capacity vector, so rebinding across sweep cells is O(links).
        Raises exactly as :func:`compile_paths` does on unknown links
        or non-positive capacities.
        """
        try:
            cap = np.array([capacities[lid] for lid in self.link_ids],
                           dtype=float)
        except KeyError as exc:
            raise SimulationError(
                f"flow crosses unknown link {exc.args[0]!r}") from None
        if np.any(cap <= 0):
            raise SimulationError("link capacities must be positive")
        concrete = resolve_backend(backend, self.num_flows)
        proto = self._protos.get(concrete)
        if proto is None:
            proto = CompiledFlowBatch(
                link_ids=self.link_ids, cap=cap, flow_ptr=self.flow_ptr,
                flow_links=self.flow_links, flow_of=self.flow_of,
                inc_flows=self.inc_flows, inc_links=self.inc_links,
                loopback=self.loopback, backend=concrete)
            self._protos[concrete] = proto
            return proto
        clone = CompiledFlowBatch.__new__(CompiledFlowBatch)
        for slot in CompiledFlowBatch.__slots__:
            setattr(clone, slot, getattr(proto, slot))
        clone.cap = cap
        return clone


def compile_structure(paths: Sequence[Tuple[LinkId, ...]],
                      ) -> FlowBatchStructure:
    """Compile a batch of flow paths into their capacity-free structure.

    Links are indexed in first-use order (flow-major), matching the
    historical solver exactly.  See :class:`FlowBatchStructure` for the
    bind step that turns this into a solvable batch.
    """
    n = len(paths)
    used_links: List[LinkId] = []
    index_of: Dict[LinkId, int] = {}
    flow_links: List[int] = []
    flow_ptr = np.zeros(n + 1, dtype=np.intp)
    for j, path in enumerate(paths):
        for lid in path:
            idx = index_of.get(lid)
            if idx is None:
                idx = len(used_links)
                index_of[lid] = idx
                used_links.append(lid)
            flow_links.append(idx)
        flow_ptr[j + 1] = len(flow_links)

    m = len(used_links)
    links_arr = np.asarray(flow_links, dtype=np.intp)
    counts = np.diff(flow_ptr)
    flow_of = np.repeat(np.arange(n, dtype=np.intp), counts)
    if links_arr.size:
        # Dedupe (flow, link) pairs: the incidence counts a link once
        # per crossing flow even if a (degenerate) path repeats it.
        enc = np.unique(flow_of * m + links_arr)
        inc_flows = enc // m
        inc_links = enc - inc_flows * m
    else:
        inc_flows = np.zeros(0, dtype=np.intp)
        inc_links = np.zeros(0, dtype=np.intp)
    return FlowBatchStructure(link_ids=tuple(used_links),
                              flow_ptr=flow_ptr, flow_links=links_arr,
                              flow_of=flow_of, inc_flows=inc_flows,
                              inc_links=inc_links, loopback=counts == 0)


def compile_paths(paths: Sequence[Tuple[LinkId, ...]],
                  capacities: Dict[LinkId, float],
                  backend: Optional[str] = None) -> CompiledFlowBatch:
    """Compile a batch of flow paths against ``capacities``.

    Links are indexed in first-use order (flow-major), matching the
    historical solver exactly; a path crossing a link with no declared
    capacity raises, as does a non-positive capacity.  ``backend``
    picks the incidence representation (see module docstring);
    ``None``/``"auto"`` auto-select by batch size.  One-shot
    convenience over :func:`compile_structure` +
    :meth:`FlowBatchStructure.bind`; callers re-posing one pattern
    under many capacity sets keep the structure and rebind instead.
    """
    return compile_structure(paths).bind(capacities, backend=backend)


def compile_flows(flows: Sequence[Flow],
                  capacities: Dict[LinkId, float],
                  backend: Optional[str] = None) -> CompiledFlowBatch:
    """:func:`compile_paths` over ``Flow`` objects."""
    return compile_paths([f.path for f in flows], capacities,
                         backend=backend)


class FillState:
    """The recorded trajectory of one progressive-filling solve.

    One entry per filling round, flattened into arrays so the next
    event can warm-start without per-round Python work:

    * ``bottlenecks[r]`` / ``levels[r]`` — the round's fair-share
      increment and the cumulative level a flow frozen in round ``r``
      ends at (accumulated with the exact float additions the solver
      performs, so replayed rates are bit-for-bit);
    * ``sat_cat``/``sat_ptr`` — per-round saturated link indices
      (CSR-style);
    * ``frozen_cat``/``frozen_ptr`` — per-round frozen flow indices;
    * ``counts`` — the (rounds x links) per-round link count vectors
      (needed to replay residual-capacity updates exactly);
    * ``active`` — the solve's active mask; ``rates`` — its result.

    The warm-start contract (proved in :func:`progressive_fill`): when
    the next event's active set is a *subset* (flows completed, none
    admitted), every round whose saturated links avoid the completed
    flows' links is untouched — same bottleneck, same frozen set, same
    float arithmetic — and can be replayed from this record.
    """

    __slots__ = ("active", "nrounds", "bottlenecks", "levels",
                 "sat_cat", "sat_ptr", "frozen_cat", "frozen_ptr",
                 "frozen_levels", "counts", "rates", "replayed")

    def __init__(self, active: np.ndarray, bottlenecks: np.ndarray,
                 levels: np.ndarray, sat_cat: np.ndarray,
                 sat_ptr: np.ndarray, frozen_cat: np.ndarray,
                 frozen_ptr: np.ndarray, frozen_levels: np.ndarray,
                 counts: np.ndarray, rates: np.ndarray,
                 replayed: int = 0) -> None:
        self.active = active
        self.nrounds = len(bottlenecks)
        #: Rounds this solve replayed from its warm state (0 for a cold
        #: solve) — the event loop's signal for adaptive warm-starting.
        self.replayed = replayed
        self.bottlenecks = bottlenecks
        self.levels = levels
        self.sat_cat = sat_cat
        self.sat_ptr = sat_ptr
        self.frozen_cat = frozen_cat
        self.frozen_ptr = frozen_ptr
        #: ``frozen_cat``-aligned cumulative level per frozen flow (the
        #: exact float its rate froze at) — lets the replay assign all
        #: prefix rates in one fancy index.
        self.frozen_levels = frozen_levels
        self.counts = counts
        self.rates = rates


def _pack_rounds(lists: List[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-round index arrays into (cat, ptr) CSR form."""
    ptr = np.zeros(len(lists) + 1, dtype=np.intp)
    for i, arr in enumerate(lists):
        ptr[i + 1] = ptr[i] + len(arr)
    cat = (np.concatenate(lists) if lists
           else np.zeros(0, dtype=np.intp))
    return cat, ptr


FillResultT = Union[np.ndarray, Tuple[np.ndarray, Optional[FillState]]]


def _delta_links(batch: CompiledFlowBatch,
                 idx: Optional[np.ndarray]) -> np.ndarray:
    """Concatenated link indices of the (deduped) paths of flows ``idx``."""
    if idx is None or len(idx) == 0:
        return np.zeros(0, dtype=np.intp)
    ptr = batch.inc_ptr
    if len(idx) == 1:
        i = int(idx[0])
        return batch.inc_links[ptr[i]:ptr[i + 1]]
    return np.concatenate(
        [batch.inc_links[ptr[int(i)]:ptr[int(i) + 1]] for i in idx])


def progressive_fill(batch: CompiledFlowBatch,
                     active: Optional[np.ndarray] = None,
                     *, warm: Optional[FillState] = None,
                     removed: Optional[np.ndarray] = None,
                     added: Optional[np.ndarray] = None,
                     record: bool = False) -> FillResultT:
    """Max-min fair rates over ``batch`` restricted to ``active`` flows.

    ``active`` is a boolean mask aligned with the batch (``None`` means
    every flow).  Inactive flows get rate 0; loopback flows get
    ``inf``.  Returns the rates array, or ``(rates, FillState)`` when
    ``record`` is true (the state is ``None`` for degenerate batches).

    ``warm`` is a :class:`FillState` recorded on the same batch over an
    active set that differs from the current one by removals (flows
    completed) and/or additions (flows admitted); a record from a
    different batch silently falls back to a cold solve.  The solver
    replays recorded rounds up to the first round the deltas touch and
    re-solves only from there.  Replayed solves are **bit-for-bit**
    what the cold solve computes, by the following argument.
    *Removals*: a removed flow stays filling through every replayed
    round (its links hold no saturated link there, so it never froze),
    hence the new per-round link counts are exactly
    ``counts - removed_counts`` (small-integer float math); links the
    removed flows do not cross keep identical floats, links they do
    cross only see their fair share *rise* (counts shrink, residuals
    grow, and float subtraction/division are monotone), so a link
    strictly above the bottleneck's tie tolerance stays above it.  The
    replay stops at the first round whose saturated links touch a
    removed flow.  *Additions*: an added flow starts filling in round 0
    and only *lowers* fair shares on the links it crosses, so the
    replay additionally walks the recorded rounds computing the exact
    new fair share ``residual' / (counts - removed + added)`` on every
    addition-touched link and stops at the first round where one of
    them falls within the recorded bottleneck's tie tolerance (it
    would have saturated earlier, changing the trajectory).  Below
    that round nothing else changed: the recorded saturated links are
    touched by neither delta, so their fair shares are the identical
    floats, the bottleneck and frozen sets are unchanged, and no added
    flow freezes inside the replayed prefix.

    ``removed`` / ``added`` are an optional fast path for trusted
    callers (the event loop): the exact indices dropped from / admitted
    into ``warm``'s active set since it was recorded.  When either is
    given, the solver skips the mask-diff validation and slices the
    delta flows' links straight from the batch CSR.  Both are ignored
    without ``warm``; passing indices that do not match ``active``'s
    true difference voids the warm-start contract.
    """
    n = batch.num_flows
    rates = np.zeros(n)
    if n == 0:
        return (rates, None) if record else rates

    act = np.ones(n, dtype=bool) if active is None else active
    if batch.any_loopback:
        rates[batch.loopback] = np.inf
        filling = act & ~batch.loopback
    else:
        filling = act.copy()

    m = batch.num_links
    if m == 0:
        return (rates, None) if record else rates

    # -- warm-start: replay the previous event's recorded rounds ----------
    state = warm
    d_links: Optional[np.ndarray] = None
    a_links: Optional[np.ndarray] = None
    if state is not None and (removed is not None or added is not None):
        # Trusted caller: `removed`/`added` name the delta flows exactly.
        if (removed is None or len(removed) == 0) \
                and (added is None or len(added) == 0):
            return ((state.rates.copy(), state) if record
                    else state.rates.copy())
        d_links = _delta_links(batch, removed)
        a_links = _delta_links(batch, added)
    elif state is not None:
        if state.active.shape[0] != n:
            state = None  # a foreign record: solve cold
        else:
            removed_mask = state.active & ~act
            added_mask = act & ~state.active
            if not removed_mask.any() and not added_mask.any():
                # Identical active set: the record *is* this solve.
                return ((state.rates.copy(), state) if record
                        else state.rates.copy())
            d_links = batch.inc_links[removed_mask[batch.inc_flows]]
            a_links = batch.inc_links[added_mask[batch.inc_flows]]
    rstar = 0
    dcounts: Optional[np.ndarray] = None
    acounts: Optional[np.ndarray] = None
    residual: Optional[np.ndarray] = None
    if state is not None:
        d_mask = np.zeros(m, dtype=bool)
        d_mask[d_links] = True
        bad = np.flatnonzero(d_mask[state.sat_cat])
        if bad.size:
            rstar = int(np.searchsorted(state.sat_ptr, bad[0],
                                        side="right")) - 1
        else:
            rstar = state.nrounds
        dcounts = np.bincount(d_links, minlength=m).astype(np.float64)
        acounts = np.bincount(a_links, minlength=m).astype(np.float64)
        if a_links.size:
            # Addition divergence: walk the prefix computing the exact
            # new fair share on every addition-touched link and stop at
            # the first round one falls within the recorded tie
            # tolerance.  Counts on touched links stay >= 1 (each is
            # crossed by an added flow) so the divisions are safe.
            touched = np.flatnonzero(acounts)
            resid_t = batch.cap[touched].copy()
            cnt_adj = acounts[touched] - dcounts[touched]
            for j in range(rstar):
                cnt = state.counts[j][touched] + cnt_adj
                fair = resid_t / cnt
                if float(fair.min()) <= state.bottlenecks[j] + 1e-15:
                    rstar = j
                    break
                resid_t -= cnt * state.bottlenecks[j]
                np.maximum(resid_t, 0.0, out=resid_t)
        if rstar > 0:
            fcut = int(state.frozen_ptr[rstar])
            frozen_pre = state.frozen_cat[:fcut]
            rates[frozen_pre] = state.frozen_levels[:fcut]
            filling[frozen_pre] = False
            rates[filling] = state.levels[rstar - 1]
        if filling.any():
            # Resuming the fill loop needs the residual capacities at
            # round ``rstar`` — replay the recorded updates with the
            # removed flows' (exact integer) contribution subtracted.
            residual = batch.cap.copy()
            for s in range(rstar):
                residual -= ((state.counts[s] - dcounts + acounts)
                             * state.bottlenecks[s])
                np.maximum(residual, 0.0, out=residual)

    # -- the filling loop (cold, or resumed past the replayed prefix) ----
    app_b: List[float] = []
    app_lvl: List[float] = []
    app_sat: List[np.ndarray] = []
    app_frozen: List[np.ndarray] = []
    app_counts: List[np.ndarray] = []
    clean = True
    if filling.any():
        if residual is None:
            residual = batch.cap.copy()
        level = float(state.levels[rstar - 1]) \
            if (state is not None and rstar > 0) else 0.0
        filling_f = filling.astype(np.float64)

        # Progressive filling: at most one link saturates per round, so
        # the loop runs at most m times.  The arithmetic mirrors the
        # historical per-event solver operation for operation, so
        # restricted solves are bit-for-bit what a fresh solve over the
        # subset returns.
        for _ in range(m + 1):
            counts = batch.link_counts(filling_f)
            hot_idx = np.nonzero(counts)[0]
            if not hot_idx.size:  # pragma: no cover - defensive
                clean = False
                break
            fair_hot = residual[hot_idx] / counts[hot_idx]
            bottleneck = float(fair_hot.min())
            if not np.isfinite(bottleneck):  # pragma: no cover - defensive
                clean = False
                break
            # Grant the increment to every filling flow.
            rates[filling] += bottleneck
            residual -= counts * bottleneck
            residual = np.maximum(residual, 0.0)
            # Freeze flows on saturated links.
            sat_idx = hot_idx[fair_hot <= bottleneck + 1e-15]
            frozen = batch.flows_on(sat_idx, filling)
            if not frozen.any():  # pragma: no cover - defensive
                clean = False
                break
            if record:
                level = level + bottleneck
                app_b.append(bottleneck)
                app_lvl.append(level)
                app_sat.append(sat_idx)
                app_frozen.append(np.nonzero(frozen)[0])
                app_counts.append(counts)
            filling = filling & ~frozen
            if not filling.any():
                break
            filling_f[frozen] = 0.0
        else:  # pragma: no cover - defensive
            raise SimulationError("progressive filling failed to converge")

    if not record:
        return rates
    if not clean:  # pragma: no cover - defensive
        return rates, None

    # -- assemble the new record (prefix of the replay + fresh rounds) ----
    active_copy = act.copy()
    if state is not None and not app_b:
        # Pure replay (possibly truncated): the trajectory is a prefix
        # of the old one with the removed flows' link counts shifted
        # out — array views, no concatenation.
        full = rstar == state.nrounds
        new_state = FillState(
            active=active_copy,
            bottlenecks=state.bottlenecks if full
            else state.bottlenecks[:rstar],
            levels=state.levels if full else state.levels[:rstar],
            sat_cat=state.sat_cat if full
            else state.sat_cat[:state.sat_ptr[rstar]],
            sat_ptr=state.sat_ptr if full
            else state.sat_ptr[:rstar + 1],
            frozen_cat=state.frozen_cat if full
            else state.frozen_cat[:state.frozen_ptr[rstar]],
            frozen_ptr=state.frozen_ptr if full
            else state.frozen_ptr[:rstar + 1],
            frozen_levels=state.frozen_levels if full
            else state.frozen_levels[:state.frozen_ptr[rstar]],
            counts=(state.counts if full else state.counts[:rstar])
            - dcounts + acounts,
            rates=rates.copy(), replayed=rstar)
        return rates, new_state

    app_fro_cat, app_fro_ptr = _pack_rounds(app_frozen)
    app_fro_levels = np.repeat(np.asarray(app_lvl),
                               np.diff(app_fro_ptr))
    if state is not None and rstar > 0:
        pre_counts = state.counts[:rstar] - dcounts + acounts
        bottlenecks = np.concatenate(
            [state.bottlenecks[:rstar], np.asarray(app_b)])
        levels = np.concatenate(
            [state.levels[:rstar], np.asarray(app_lvl)])
        app_sat_cat, app_sat_ptr = _pack_rounds(app_sat)
        sat_cat = np.concatenate(
            [state.sat_cat[:state.sat_ptr[rstar]], app_sat_cat])
        sat_ptr = np.concatenate(
            [state.sat_ptr[:rstar + 1],
             state.sat_ptr[rstar] + app_sat_ptr[1:]])
        frozen_cat = np.concatenate(
            [state.frozen_cat[:state.frozen_ptr[rstar]], app_fro_cat])
        frozen_ptr = np.concatenate(
            [state.frozen_ptr[:rstar + 1],
             state.frozen_ptr[rstar] + app_fro_ptr[1:]])
        frozen_levels = np.concatenate(
            [state.frozen_levels[:state.frozen_ptr[rstar]],
             app_fro_levels])
        counts_mat = (np.concatenate([pre_counts, np.asarray(app_counts)])
                      if app_counts else pre_counts)
    else:
        bottlenecks = np.asarray(app_b)
        levels = np.asarray(app_lvl)
        sat_cat, sat_ptr = _pack_rounds(app_sat)
        frozen_cat, frozen_ptr = app_fro_cat, app_fro_ptr
        frozen_levels = app_fro_levels
        counts_mat = (np.asarray(app_counts) if app_counts
                      else np.zeros((0, m)))
    new_state = FillState(
        active=active_copy, bottlenecks=bottlenecks, levels=levels,
        sat_cat=sat_cat, sat_ptr=sat_ptr, frozen_cat=frozen_cat,
        frozen_ptr=frozen_ptr, frozen_levels=frozen_levels,
        counts=counts_mat, rates=rates.copy(), replayed=rstar)
    return rates, new_state


def max_min_fair_rates(
    flows: Sequence[Flow],
    capacities: Dict[LinkId, float],
) -> np.ndarray:
    """Max-min fair rates for ``flows`` under ``capacities``.

    Returns an array of rates (bytes/s) aligned with ``flows``.  Flows
    with an empty path (loopback) get infinite rate.  Raises if a flow
    crosses a link with no declared capacity.  One-shot convenience
    over :func:`compile_flows` + :func:`progressive_fill`; hot loops
    compile once and fill many times instead.
    """
    if not flows:
        return np.zeros(0)
    batch = compile_flows(flows, capacities)
    if batch.num_links == 0:
        # Every flow is loopback: the historical solver reported inf
        # for the whole batch.
        return np.full(batch.num_flows, np.inf)
    return progressive_fill(batch)


def validate_allocation(
    flows: Sequence[Flow],
    capacities: Dict[LinkId, float],
    rates: np.ndarray,
    rtol: float = 1e-9,
) -> None:
    """Check feasibility + bottleneck saturation of a rate allocation.

    *Feasibility*: no link carries more than its capacity.
    *Max-min optimality witness*: every flow crosses at least one saturated
    link (otherwise its rate could be raised, contradicting max-min).
    Raises :class:`SimulationError` on violation; used by property tests.
    """
    load: Dict[LinkId, float] = {lid: 0.0 for lid in capacities}
    for f, r in zip(flows, rates):
        if not np.isfinite(r) and f.path:
            raise SimulationError("finite-path flow got infinite rate")
        for lid in f.path:
            load[lid] += r
    for lid, used in load.items():
        if used > capacities[lid] * (1 + rtol) + 1e-12:
            raise SimulationError(
                f"link {lid!r} overloaded: {used} > {capacities[lid]}")
    saturated = {lid for lid, used in load.items()
                 if used >= capacities[lid] * (1 - 1e-6) - 1e-12}
    for f, r in zip(flows, rates):
        if f.path and not any(lid in saturated for lid in f.path):
            raise SimulationError(
                f"flow {f.src}->{f.dst} crosses no saturated link "
                f"(rate {r}); allocation is not max-min")
