"""Max-min fair bandwidth sharing (the heart of the fluid model).

Given a set of flows, each pinned to a path (a set of link ids), and link
capacities, compute the max-min fair rate allocation by *progressive
filling*: raise every unfrozen flow's rate uniformly until some link
saturates; freeze the flows crossing it; repeat.  This is the allocation
SimGrid's default TCP model converges to at this granularity, and is the
textbook fluid model for congestion-controlled traffic.

The solver is vectorized with NumPy over a links x flows incidence matrix;
the Fig. 2 grid only has O(N) flows per step, but ablation sweeps run it
tens of thousands of times, so the hot loop matters (see the HPC guide:
vectorize the bottleneck, keep the rest legible).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError

LinkId = Hashable


@dataclass
class Flow:
    """A fluid flow: ``size`` bytes over the links in ``path``.

    ``remaining`` tracks progress while the simulator advances time;
    ``rate`` is (re)assigned after every allocation round.
    """

    src: int
    dst: int
    size: float
    path: Tuple[LinkId, ...]
    latency: float = 0.0
    tag: str = ""
    remaining: float = field(init=False)
    rate: float = field(default=0.0, init=False)
    start_time: float = field(default=0.0, init=False)
    finish_time: float = field(default=float("nan"), init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError(
                f"flow {self.src}->{self.dst} size must be > 0")
        if not self.path and self.src != self.dst:
            raise SimulationError(
                f"flow {self.src}->{self.dst} has an empty path")
        self.remaining = float(self.size)


def max_min_fair_rates(
    flows: Sequence[Flow],
    capacities: Dict[LinkId, float],
) -> np.ndarray:
    """Max-min fair rates for ``flows`` under ``capacities``.

    Returns an array of rates (bytes/s) aligned with ``flows``.  Flows with
    an empty path (loopback) get infinite rate.  Raises if a flow crosses a
    link with no declared capacity.
    """
    n = len(flows)
    rates = np.zeros(n)
    if n == 0:
        return rates

    # Collect the links actually used; ignore idle ones.
    used_links: List[LinkId] = []
    index_of: Dict[LinkId, int] = {}
    for f in flows:
        for lid in f.path:
            if lid not in index_of:
                if lid not in capacities:
                    raise SimulationError(f"flow crosses unknown link {lid!r}")
                index_of[lid] = len(used_links)
                used_links.append(lid)

    loopback = np.array([len(f.path) == 0 for f in flows])
    if not used_links:
        rates[:] = np.inf
        return rates

    m = len(used_links)
    # Incidence: A[l, f] = 1 iff flow f crosses link l.
    inc = np.zeros((m, n), dtype=bool)
    for j, f in enumerate(flows):
        for lid in f.path:
            inc[index_of[lid], j] = True

    cap = np.array([capacities[lid] for lid in used_links], dtype=float)
    if np.any(cap <= 0):
        raise SimulationError("link capacities must be positive")

    residual = cap.copy()
    active = ~loopback  # flows still being filled
    rates[loopback] = np.inf

    # Progressive filling: at most one link saturates per round, so the
    # loop runs at most m times.
    for _ in range(m + 1):
        # NB: cast before matmul — bool @ bool would OR, not count.
        counts = inc @ active.astype(np.float64)  # active flows per link
        hot = counts > 0
        if not np.any(hot):
            break
        fair = np.full(m, np.inf)
        fair[hot] = residual[hot] / counts[hot]
        bottleneck = float(fair.min())
        if not np.isfinite(bottleneck):  # pragma: no cover - defensive
            break
        # Grant the increment to every active flow.
        rates[active] += bottleneck
        residual -= counts * bottleneck
        residual = np.maximum(residual, 0.0)
        # Freeze flows on saturated links.
        saturated = hot & (fair <= bottleneck + 1e-15)
        frozen = np.any(inc[saturated][:, :], axis=0) & active
        if not np.any(frozen):  # pragma: no cover - defensive
            break
        active = active & ~frozen
        if not np.any(active):
            break
    else:  # pragma: no cover - defensive
        raise SimulationError("progressive filling failed to converge")

    return rates


def validate_allocation(
    flows: Sequence[Flow],
    capacities: Dict[LinkId, float],
    rates: np.ndarray,
    rtol: float = 1e-9,
) -> None:
    """Check feasibility + bottleneck saturation of a rate allocation.

    *Feasibility*: no link carries more than its capacity.
    *Max-min optimality witness*: every flow crosses at least one saturated
    link (otherwise its rate could be raised, contradicting max-min).
    Raises :class:`SimulationError` on violation; used by property tests.
    """
    load: Dict[LinkId, float] = {lid: 0.0 for lid in capacities}
    for f, r in zip(flows, rates):
        if not np.isfinite(r) and f.path:
            raise SimulationError("finite-path flow got infinite rate")
        for lid in f.path:
            load[lid] += r
    for lid, used in load.items():
        if used > capacities[lid] * (1 + rtol) + 1e-12:
            raise SimulationError(
                f"link {lid!r} overloaded: {used} > {capacities[lid]}")
    saturated = {lid for lid, used in load.items()
                 if used >= capacities[lid] * (1 - 1e-6) - 1e-12}
    for f, r in zip(flows, rates):
        if f.path and not any(lid in saturated for lid in f.path):
            raise SimulationError(
                f"flow {f.src}->{f.dst} crosses no saturated link "
                f"(rate {r}); allocation is not max-min")
