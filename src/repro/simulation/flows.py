"""Max-min fair bandwidth sharing (the heart of the fluid model).

Given a set of flows, each pinned to a path (a set of link ids), and link
capacities, compute the max-min fair rate allocation by *progressive
filling*: raise every unfrozen flow's rate uniformly until some link
saturates; freeze the flows crossing it; repeat.  This is the allocation
SimGrid's default TCP model converges to at this granularity, and is the
textbook fluid model for congestion-controlled traffic.

The solver is split into a **compile** step and a **fill** step so the
fluid event loop never rebuilds Python-side structures per event:

* :func:`compile_paths` turns a batch of flow paths into a
  :class:`CompiledFlowBatch` — a CSR flow→link index, the dense
  links x flows incidence matrix, and the link capacity vector — built
  exactly once per ``run()`` batch;
* :func:`progressive_fill` solves max-min over the compiled structure
  restricted to an *active mask*, which is how one synchronous step of
  N flows costs N vectorized solves instead of N full rebuilds.

:func:`max_min_fair_rates` keeps the historical one-shot API on top of
the two (and the property suite pins it bit-for-bit against the frozen
pre-refactor implementation in ``repro.simulation._reference``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError

LinkId = Hashable


@dataclass
class Flow:
    """A fluid flow: ``size`` bytes over the links in ``path``.

    ``remaining`` tracks progress while the simulator advances time;
    ``rate`` is (re)assigned after every allocation round.
    """

    src: int
    dst: int
    size: float
    path: Tuple[LinkId, ...]
    latency: float = 0.0
    tag: str = ""
    remaining: float = field(init=False)
    rate: float = field(default=0.0, init=False)
    start_time: float = field(default=0.0, init=False)
    finish_time: float = field(default=float("nan"), init=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise SimulationError(
                f"flow {self.src}->{self.dst} size must be > 0")
        if not self.path and self.src != self.dst:
            raise SimulationError(
                f"flow {self.src}->{self.dst} has an empty path")
        self.remaining = float(self.size)


class CompiledFlowBatch:
    """One batch of flow paths compiled for repeated max-min solves.

    Everything the per-event hot loop needs, precomputed as arrays:

    * ``link_ids`` / ``cap`` — the links actually used by the batch (in
      first-use order, matching the historical solver) and their
      capacities;
    * ``inc`` — dense links x flows incidence (float64, so the per-round
      ``inc @ active`` matmul needs no cast);
    * ``flow_ptr`` / ``flow_links`` — CSR rows: flow ``j`` crosses
      ``flow_links[flow_ptr[j]:flow_ptr[j+1]]``;
    * ``flow_of`` — ``flow_links``'s owning flow per entry (for
      flow-major trace accumulation with ``np.add.at``);
    * ``loopback`` — flows with an empty path (delivered instantly).
    """

    __slots__ = ("link_ids", "cap", "inc", "flow_ptr", "flow_links",
                 "flow_of", "loopback", "any_loopback")

    def __init__(self, link_ids: Tuple[LinkId, ...], cap: np.ndarray,
                 inc: np.ndarray, flow_ptr: np.ndarray,
                 flow_links: np.ndarray, flow_of: np.ndarray,
                 loopback: np.ndarray) -> None:
        self.link_ids = link_ids
        self.cap = cap
        self.inc = inc
        self.flow_ptr = flow_ptr
        self.flow_links = flow_links
        self.flow_of = flow_of
        self.loopback = loopback
        self.any_loopback = bool(loopback.any())

    @property
    def num_flows(self) -> int:
        """Flows in the batch."""
        return len(self.flow_ptr) - 1

    @property
    def num_links(self) -> int:
        """Distinct links used by the batch."""
        return len(self.link_ids)


def compile_paths(paths: Sequence[Tuple[LinkId, ...]],
                  capacities: Dict[LinkId, float]) -> CompiledFlowBatch:
    """Compile a batch of flow paths against ``capacities``.

    Links are indexed in first-use order (flow-major), matching the
    historical solver exactly; a path crossing a link with no declared
    capacity raises, as does a non-positive capacity.
    """
    n = len(paths)
    used_links: List[LinkId] = []
    index_of: Dict[LinkId, int] = {}
    flow_links: List[int] = []
    flow_ptr = np.zeros(n + 1, dtype=np.intp)
    for j, path in enumerate(paths):
        for lid in path:
            idx = index_of.get(lid)
            if idx is None:
                if lid not in capacities:
                    raise SimulationError(
                        f"flow crosses unknown link {lid!r}")
                idx = len(used_links)
                index_of[lid] = idx
                used_links.append(lid)
            flow_links.append(idx)
        flow_ptr[j + 1] = len(flow_links)

    m = len(used_links)
    links_arr = np.asarray(flow_links, dtype=np.intp)
    counts = np.diff(flow_ptr)
    flow_of = np.repeat(np.arange(n, dtype=np.intp), counts)
    inc = np.zeros((m, n), dtype=np.float64)
    if links_arr.size:
        inc[links_arr, flow_of] = 1.0
    cap = np.array([capacities[lid] for lid in used_links], dtype=float)
    if np.any(cap <= 0):
        raise SimulationError("link capacities must be positive")
    loopback = counts == 0
    return CompiledFlowBatch(link_ids=tuple(used_links), cap=cap, inc=inc,
                             flow_ptr=flow_ptr, flow_links=links_arr,
                             flow_of=flow_of, loopback=loopback)


def compile_flows(flows: Sequence[Flow],
                  capacities: Dict[LinkId, float]) -> CompiledFlowBatch:
    """:func:`compile_paths` over ``Flow`` objects."""
    return compile_paths([f.path for f in flows], capacities)


def progressive_fill(batch: CompiledFlowBatch,
                     active: Optional[np.ndarray] = None) -> np.ndarray:
    """Max-min fair rates over ``batch`` restricted to ``active`` flows.

    ``active`` is a boolean mask aligned with the batch (``None`` means
    every flow).  Inactive flows get rate 0; loopback flows get
    ``inf``.  The filling loop is identical, operation for operation,
    to the historical solver — links idle under the current mask have
    zero counts and drop out of every round — so restricted solves are
    bit-for-bit what a fresh solve over the active subset would return.
    """
    n = batch.num_flows
    rates = np.zeros(n)
    if n == 0:
        return rates

    if batch.any_loopback:
        rates[batch.loopback] = np.inf
        filling = (~batch.loopback if active is None
                   else active & ~batch.loopback)
    else:
        filling = (np.ones(n, dtype=bool) if active is None
                   else active.copy())

    m = batch.num_links
    if m == 0:
        return rates

    inc = batch.inc
    residual = batch.cap.copy()
    filling_f = filling.astype(np.float64)

    # Progressive filling: at most one link saturates per round, so the
    # loop runs at most m times.  The arithmetic mirrors the historical
    # per-event solver operation for operation (compressed over the hot
    # links instead of masking a full-size array), so restricted solves
    # are bit-for-bit what a fresh solve over the subset returns.
    for _ in range(m + 1):
        counts = inc @ filling_f  # active flows per link
        hot_idx = np.nonzero(counts)[0]
        if not hot_idx.size:
            break
        fair_hot = residual[hot_idx] / counts[hot_idx]
        bottleneck = float(fair_hot.min())
        if not np.isfinite(bottleneck):  # pragma: no cover - defensive
            break
        # Grant the increment to every filling flow.
        rates[filling] += bottleneck
        residual -= counts * bottleneck
        residual = np.maximum(residual, 0.0)
        # Freeze flows on saturated links.
        sat_idx = hot_idx[fair_hot <= bottleneck + 1e-15]
        frozen = (np.add.reduce(inc[sat_idx], axis=0) > 0.0) & filling
        if not frozen.any():  # pragma: no cover - defensive
            break
        filling = filling & ~frozen
        if not filling.any():
            break
        filling_f[frozen] = 0.0
    else:  # pragma: no cover - defensive
        raise SimulationError("progressive filling failed to converge")

    return rates


def max_min_fair_rates(
    flows: Sequence[Flow],
    capacities: Dict[LinkId, float],
) -> np.ndarray:
    """Max-min fair rates for ``flows`` under ``capacities``.

    Returns an array of rates (bytes/s) aligned with ``flows``.  Flows
    with an empty path (loopback) get infinite rate.  Raises if a flow
    crosses a link with no declared capacity.  One-shot convenience
    over :func:`compile_flows` + :func:`progressive_fill`; hot loops
    compile once and fill many times instead.
    """
    if not flows:
        return np.zeros(0)
    batch = compile_flows(flows, capacities)
    if batch.num_links == 0:
        # Every flow is loopback: the historical solver reported inf
        # for the whole batch.
        return np.full(batch.num_flows, np.inf)
    return progressive_fill(batch)


def validate_allocation(
    flows: Sequence[Flow],
    capacities: Dict[LinkId, float],
    rates: np.ndarray,
    rtol: float = 1e-9,
) -> None:
    """Check feasibility + bottleneck saturation of a rate allocation.

    *Feasibility*: no link carries more than its capacity.
    *Max-min optimality witness*: every flow crosses at least one saturated
    link (otherwise its rate could be raised, contradicting max-min).
    Raises :class:`SimulationError` on violation; used by property tests.
    """
    load: Dict[LinkId, float] = {lid: 0.0 for lid in capacities}
    for f, r in zip(flows, rates):
        if not np.isfinite(r) and f.path:
            raise SimulationError("finite-path flow got infinite rate")
        for lid in f.path:
            load[lid] += r
    for lid, used in load.items():
        if used > capacities[lid] * (1 + rtol) + 1e-12:
            raise SimulationError(
                f"link {lid!r} overloaded: {used} > {capacities[lid]}")
    saturated = {lid for lid, used in load.items()
                 if used >= capacities[lid] * (1 - 1e-6) - 1e-12}
    for f, r in zip(flows, rates):
        if f.path and not any(lid in saturated for lid in f.path):
            raise SimulationError(
                f"flow {f.src}->{f.dst} crosses no saturated link "
                f"(rate {r}); allocation is not max-min")
