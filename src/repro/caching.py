"""Shared in-memory caching primitives.

Every memoization layer in the repo — the optical ring's RWA cache, the
OCS fabric's demand-decomposition step cache, the fluid simulator's
pattern cache, and the topology routed-path cache — uses the same two
building blocks:

* :class:`LruCache` — a bounded LRU mapping with hit/miss counters;
* :class:`CacheStats` — the frozen counter snapshot those caches report
  through ``describe()`` and the CLI.

They live in this dependency-free module (only the stdlib) so that the
lowest layers (``repro.topology``) and the highest
(``repro.core.substrates``, ``repro.core.cache_store``) can share one
mechanism without import cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of an internal memoization cache."""

    hits: int = 0
    misses: int = 0
    size: int = 0
    max_size: int = 0
    #: Values solved but refused by the admission policy (too costly to
    #: keep; see :attr:`LruCache.admit_cost_bound`).
    skipped: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Aggregate two counters (used when a substrate owns several
        simulators, each with its own cache)."""
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          size=self.size + other.size,
                          max_size=self.max_size + other.max_size,
                          skipped=self.skipped + other.skipped)


class LruCache:
    """A bounded LRU mapping with hit/miss counters.

    The one cache mechanism every memoization in the repo uses (the
    ring's RWA cache, the OCS fabric's decomposition step cache, the
    fluid pattern cache, the topology routed-path cache): ``get``
    promotes and counts, ``put`` evicts the least recently used entry
    beyond ``max_size``.  ``None`` is not storable (it encodes a miss).

    ``admit_cost_bound`` is an optional *admission policy*: callers that
    pass a ``cost`` to :meth:`put` (e.g. the number of flows in a step
    signature) get the value stored only when the cost is within the
    bound; over-bound values are counted in :attr:`skipped` and simply
    recomputed on the next probe.  This keeps single enormous steps
    from pinning memory or bloating the persistent spill files.
    """

    def __init__(self, max_size: int,
                 admit_cost_bound: Optional[int] = None) -> None:
        self.max_size = max(1, int(max_size))
        self.admit_cost_bound = admit_cost_bound
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Values refused by the admission policy (solved, not stored).
        self.skipped = 0
        #: Monotonic write counter — lets spillers skip unchanged caches.
        self.mutations = 0

    def get(self, key: Any) -> Optional[Any]:
        """The cached value (promoted to most recent), or ``None``."""
        value = self._data.get(key)
        if value is not None:
            self.hits += 1
            self._data.move_to_end(key)
        else:
            self.misses += 1
        return value

    def put(self, key: Any, value: Any,
            cost: Optional[int] = None) -> bool:
        """Insert/refresh ``value`` (becomes most recent), evicting the
        LRU entry when over bound.

        When ``cost`` is given and exceeds :attr:`admit_cost_bound`,
        the value is *not* stored (admission policy): :attr:`skipped`
        is incremented and ``False`` returned.  Returns ``True`` when
        the value was stored.
        """
        if cost is not None and self.admit_cost_bound is not None \
                and cost > self.admit_cost_bound:
            self.skipped += 1
            return False
        self._data[key] = value
        self._data.move_to_end(key)
        self.mutations += 1
        if len(self._data) > self.max_size:
            self._data.popitem(last=False)
        return True

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters.

        ``mutations`` advances rather than resetting — the content
        changed, so spillers must not mistake the cache for unchanged.
        """
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.skipped = 0
        self.mutations += 1

    def stats(self) -> CacheStats:
        """Current counter snapshot."""
        return CacheStats(hits=self.hits, misses=self.misses,
                          size=len(self._data), max_size=self.max_size,
                          skipped=self.skipped)

    # -- persistence hooks (see repro.core.cache_store) ---------------------

    def export_items(self) -> Dict[Any, Any]:
        """Snapshot of the live entries, LRU-first (for disk spilling)."""
        return dict(self._data)

    def warm(self, items: Dict[Any, Any]) -> int:
        """Preload ``items`` without touching the hit/miss counters.

        Entries beyond ``max_size`` evict LRU-first as usual.  Returns
        the number of entries loaded (``None`` values are skipped — the
        cache cannot represent them).
        """
        loaded = 0
        for key, value in items.items():
            if value is None:
                continue
            self.put(key, value)
            loaded += 1
        return loaded

    def values(self) -> Iterator[Any]:
        """Iterate over live values (LRU-first)."""
        return iter(list(self._data.values()))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data
