"""The serving engine: stream jobs through one shared warm substrate.

:class:`ServingEngine` closes the loop between the other serving
pieces:

1. the **traffic** list (arrival-sorted
   :class:`~repro.serving.jobs.JobSpec`\\ s) is replayed event by
   event;
2. the **scheduler** places each arrival onto a node set of the shared
   substrate — contiguous first-fit, optionally scatter under
   fragmentation — or queues it (never drops);
3. each placed job's **service rate** is measured, not assumed: every
   per-step message is dispatched through the size-adaptive
   :class:`~repro.serving.dispatch.CollectivePolicy`, its schedule
   re-based to the job's placement and executed on the *shared*
   substrate instance — so the RWA/pattern/compile caches stay warm
   across thousands of jobs;
4. **contention** between concurrent jobs comes from one combined
   fluid batch per concurrency epoch
   (:class:`~repro.serving.contention.ContentionModel`): each job's
   step time stretches by its max-min-fair slowdown until the set of
   running jobs changes.

Progress is fluid (jobs advance fractional steps between events), so
the event loop is exact: events are arrivals, completions, and the
re-solves they trigger.  A lone job has slowdown 1.0 and its placement
is the identity, so a single-job run reproduces the standalone
substrate path bit for bit — the parity the tests pin.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..collectives.primitives import transfer_bytes
from ..collectives.schedule import Schedule
from ..config import (OpticalRingSystem, ReconfigurableOCSSystem, Workload,
                      default_electrical, default_hierarchical, default_ocs,
                      default_optical, default_torus)
from ..core.substrates import Substrate, pooled_substrate
from ..core.substrates.registry import cache_stats
from ..errors import ConfigurationError, ScheduleError
from ..faults import FaultPlan
from .contention import ContentionModel, contention_topology
from .dispatch import (CollectivePolicy, adaptive_policy, generate_collective,
                       place_schedule)
from .jobs import JobSpec
from .scheduler import OnlineScheduler, Placement

__all__ = ["ServingEngine", "ServingReport", "JobRecord", "RetryPolicy"]

#: Remaining-step tolerance below which a job counts as finished.
_STEP_EPS = 1e-9

#: Substrate-name -> default shared system factory.
_DEFAULT_SYSTEMS = {
    "electrical-ring": lambda n: default_electrical(n).with_(
        topology="ring"),
    "electrical-switch": lambda n: default_electrical(n),
    "optical-ring": lambda n: default_optical(n),
    "optical-torus": lambda n: default_torus(n),
    "ocs-reconfig": lambda n: default_ocs(n),
    "hier-rack": lambda n: default_hierarchical(n),
}


@dataclass(frozen=True)
class RetryPolicy:
    """How killed jobs come back: bounded retries, exponential backoff.

    A job whose placement loses a node restarts from step zero after
    ``backoff * factor**(attempt - 1)`` seconds (attempt 1 waits
    ``backoff``).  After ``max_retries`` failed attempts the job is
    recorded in :attr:`ServingReport.failed_jobs` instead of requeued —
    bounded, so a permanently dead fabric cannot spin forever.
    """

    max_retries: int = 3
    backoff: float = 1e-3
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if not (self.backoff > 0 and math.isfinite(self.backoff)):
            raise ConfigurationError(
                f"backoff must be a finite delay > 0, got {self.backoff}")
        if not (self.factor >= 1.0 and math.isfinite(self.factor)):
            raise ConfigurationError(
                f"factor must be >= 1.0, got {self.factor}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.backoff * self.factor ** (attempt - 1)


@dataclass(frozen=True)
class JobRecord:
    """One job's lifecycle through the serving system."""

    job: JobSpec
    nodes: Tuple[int, ...]
    start_time: float
    completion_time: float
    step_time: float
    algorithms: Tuple[str, ...]
    #: Times this job was killed by a fault and restarted (0 = clean).
    attempts: int = 0

    @property
    def offset(self) -> int:
        """Lowest substrate node of the placement."""
        return self.nodes[0]

    @property
    def wait_time(self) -> float:
        """Queue wait: placement minus arrival."""
        return self.start_time - self.job.arrival_time

    @property
    def completion(self) -> float:
        """Job-completion time (JCT): completion minus arrival."""
        return self.completion_time - self.job.arrival_time

    @property
    def service_time(self) -> float:
        """Time actually running (JCT minus queue wait)."""
        return self.completion_time - self.start_time


@dataclass
class ServingReport:
    """Outcome of one serving run: per-job records plus fleet metrics."""

    capacity: int
    substrate: str
    policy: str
    collectives: str
    records: List[JobRecord] = field(default_factory=list)
    #: ``(time, depth)`` samples taken after every event.
    queue_samples: List[Tuple[float, int]] = field(default_factory=list)
    #: Consolidated substrate cache counters at end of run.
    cache_stats: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Messages dispatched per collective algorithm.
    algorithm_mix: Dict[str, int] = field(default_factory=dict)
    #: Jobs that exhausted their retry budget (never completed).
    failed_jobs: List[JobSpec] = field(default_factory=list)
    #: Running placements killed by faults (each may retry).
    preemptions: int = 0
    #: Successful resubmissions after a kill.
    retries: int = 0
    #: Integral of down-node count over the run (node-seconds).
    node_downtime: float = 0.0
    #: Fault-plan events folded during the run.
    fault_events_applied: int = 0

    @property
    def num_jobs(self) -> int:
        """Completed jobs."""
        return len(self.records)

    @property
    def availability(self) -> float:
        """Mean fraction of nodes in service over the run (1.0 = clean)."""
        span = self.makespan
        if span <= 0 or self.capacity <= 0:
            return 1.0
        return 1.0 - self.node_downtime / (self.capacity * span)

    @property
    def total_steps(self) -> int:
        """Training/decode steps served across all jobs."""
        return sum(r.job.num_steps for r in self.records)

    @property
    def makespan(self) -> float:
        """Last completion time (simulated seconds from t=0)."""
        return max((r.completion_time for r in self.records), default=0.0)

    @property
    def throughput_jobs(self) -> float:
        """Completed jobs per simulated second."""
        span = self.makespan
        return self.num_jobs / span if span > 0 else 0.0

    @property
    def throughput_steps(self) -> float:
        """Served steps per simulated second."""
        span = self.makespan
        return self.total_steps / span if span > 0 else 0.0

    def completion_times(self) -> np.ndarray:
        """Every job's JCT, in completion order."""
        return np.array([r.completion for r in self.records], dtype=float)

    def jct(self, percentile: Optional[float] = None) -> float:
        """Mean JCT, or the ``percentile``-th JCT when given."""
        times = self.completion_times()
        if not times.size:
            return 0.0
        if percentile is None:
            return float(times.mean())
        return float(np.percentile(times, percentile))

    @property
    def max_queue_depth(self) -> int:
        """Deepest the wait queue ever got."""
        return max((d for _, d in self.queue_samples), default=0)

    @property
    def mean_queue_depth(self) -> float:
        """Time-weighted average queue depth over the run."""
        if len(self.queue_samples) < 2:
            return 0.0
        total = 0.0
        for (t0, d), (t1, _) in zip(self.queue_samples,
                                    self.queue_samples[1:]):
            total += d * (t1 - t0)
        span = self.queue_samples[-1][0] - self.queue_samples[0][0]
        return total / span if span > 0 else 0.0

    def headline(self) -> Dict[str, float]:
        """The metrics block reports and benches record."""
        return {
            "jobs": float(self.num_jobs),
            "steps": float(self.total_steps),
            "makespan_s": self.makespan,
            "throughput_jobs_per_s": self.throughput_jobs,
            "throughput_steps_per_s": self.throughput_steps,
            "jct_mean_s": self.jct(),
            "jct_p50_s": self.jct(50),
            "jct_p99_s": self.jct(99),
            "max_queue_depth": float(self.max_queue_depth),
            "mean_queue_depth": self.mean_queue_depth,
            "failed_jobs": float(len(self.failed_jobs)),
            "preemptions": float(self.preemptions),
            "retries": float(self.retries),
            "availability": self.availability,
        }


@dataclass
class _Running:
    """Mutable execution state of one placed job."""

    placement: Placement
    step_time: float
    flows: List[Tuple[int, int, float]]
    algorithms: Tuple[str, ...]
    remaining: float
    slowdown: float = 1.0

    @property
    def rate_denominator(self) -> float:
        """Seconds of wall clock per step under the current slowdown."""
        return self.step_time * self.slowdown

    def completion_at(self, now: float) -> float:
        """Projected completion if the current epoch holds."""
        return now + self.remaining * self.rate_denominator


class ServingEngine:
    """Run job streams on one shared substrate (see module docstring).

    Parameters
    ----------
    substrate_name:
        Registry name of the shared fabric; the default system at
        ``capacity`` nodes is derived per name
        (``"electrical-ring"`` by default).
    system:
        Explicit shared system; overrides ``capacity``.
    capacity:
        Total substrate nodes when ``system`` is None.
    policy:
        Queue policy name (``"fifo"``, ``"sjf"``, ``"priority"``).
    placement:
        ``"contiguous"`` (default) queues a job until one unbroken
        range frees up; ``"scatter"`` falls back to fragmented node
        sets — lower queueing delay, but scattered jobs share links
        and the contention model bites.
    collectives:
        The per-message :class:`CollectivePolicy`; defaults to the
        size-adaptive switch.
    substrate:
        A ready :class:`~repro.core.substrates.Substrate` to execute
        on (benches share one warm instance across engines); defaults
        to the pooled instance for (``substrate_name``, ``system``).
    substrate_options:
        Extra keyword arguments for every ``execute`` call (e.g.
        ``{"striping": "off"}`` on the optical ring).
    """

    def __init__(self, substrate_name: str = "electrical-ring",
                 system: Optional[Any] = None,
                 capacity: int = 64,
                 policy: str = "fifo",
                 placement: str = "contiguous",
                 collectives: Optional[CollectivePolicy] = None,
                 substrate: Optional[Substrate] = None,
                 substrate_options: Optional[Mapping[str, Any]] = None,
                 ) -> None:
        if system is None:
            try:
                system = _DEFAULT_SYSTEMS[substrate_name](capacity)
            except KeyError:
                raise ConfigurationError(
                    f"no default system for substrate {substrate_name!r}; "
                    f"pass system= explicitly") from None
        self.system = system
        self.capacity = int(system.num_nodes)
        self.substrate_name = substrate_name
        self.policy = policy
        self.placement = placement
        self.collectives = (collectives if collectives is not None
                            else adaptive_policy())
        self._substrate = (substrate if substrate is not None
                           else pooled_substrate(substrate_name, system))
        self._options = dict(substrate_options or {})
        self._contention = ContentionModel(contention_topology(system))
        # Memoized per-placement schedules and job profiles: thousands
        # of jobs collapse onto a handful of (width, offset, sizes)
        # classes.
        self._schedules: Dict[Tuple, Schedule] = {}
        self._profiles: Dict[Tuple, Tuple[float, List, Tuple[str, ...]]] = {}

    @property
    def substrate(self) -> Substrate:
        """The shared substrate instance (warm across runs)."""
        return self._substrate

    # -- job profiling -------------------------------------------------------

    def _collective_schedule(self, algorithm: str, num_nodes: int,
                             message_bytes: float) -> Schedule:
        """The ``algorithm`` all-reduce at ``num_nodes`` ranks.

        ``"wrht"`` plans against the shared optical system projected to
        the job's width (payload-dependent group size), so it is keyed
        by message size as well; the system-free generators are not.
        On an OCS fabric the same arm runs the topology co-planner's
        lookahead policy instead (whole-schedule program synthesis).
        """
        if algorithm == "wrht":
            key = ("wrht", num_nodes, float(message_bytes))
            sched = self._schedules.get(key)
            if sched is not None:
                return sched
            if isinstance(self.system, ReconfigurableOCSSystem):
                from ..core.topoplan import plan_topology
                plan = plan_topology(
                    self.system.with_(num_nodes=num_nodes),
                    Workload(data_bytes=message_bytes, name="serving"),
                    policies=("lookahead",))
                sched = self._schedules[key] = plan.schedule
                return sched
            if not isinstance(self.system, OpticalRingSystem):
                raise ConfigurationError(
                    "collective 'wrht' needs an optical-ring shared "
                    "substrate")
            from ..core.planner import plan_wrht
            plan = plan_wrht(self.system.with_(num_nodes=num_nodes),
                             Workload(data_bytes=message_bytes,
                                      name="serving"))
            sched = self._schedules[key] = plan.schedule
            return sched
        key = (algorithm, num_nodes)
        sched = self._schedules.get(key)
        if sched is None:
            sched = self._schedules[key] = generate_collective(
                algorithm, num_nodes)
        return sched

    def _placed_schedule(self, algorithm: str, nodes: Tuple[int, ...],
                         message_bytes: float) -> Schedule:
        key = (algorithm, nodes, float(message_bytes))
        sched = self._schedules.get(key)
        if sched is None:
            base = self._collective_schedule(algorithm, len(nodes),
                                             message_bytes)
            sched = self._schedules[key] = place_schedule(
                base, nodes, self.capacity)
        return sched

    def _profile(self, job: JobSpec, nodes: Tuple[int, ...]
                 ) -> Tuple[float, List, Tuple[str, ...]]:
        """(solo step time, representative flows, per-message algos).

        The step time is the sum of every message's full schedule
        execution on the shared substrate at the job's placement; the
        representative flows are the heaviest step of the largest
        message's schedule — the bandwidth-dominant pattern the
        contention batch shares with other jobs.
        """
        sizes = job.resolve_message_sizes()
        key = (nodes, sizes)
        cached = self._profiles.get(key)
        if cached is not None:
            return cached
        algos = tuple(self.collectives.select(m) for m in sizes)
        batch = []
        for m, algo in zip(sizes, algos):
            sched = self._placed_schedule(algo, nodes, m)
            batch.append((sched, Workload(data_bytes=m, name="serving"),
                          self._options))
        reports = self._substrate.execute_many(batch)
        step_time = sum(r.total_time for r in reports)
        if step_time <= 0.0:
            raise ConfigurationError(
                f"job {job.job_id}: non-positive step time on "
                f"{self._substrate.name}")
        big = int(max(range(len(sizes)), key=lambda i: sizes[i]))
        big_sched, big_wl, _ = batch[big]
        flows = self._heaviest_step_flows(big_sched, big_wl)
        profile = (step_time, flows, algos)
        self._profiles[key] = profile
        return profile

    @staticmethod
    def _heaviest_step_flows(schedule: Schedule, workload: Workload
                             ) -> List[Tuple[int, int, float]]:
        best: List[Tuple[int, int, float]] = []
        best_bytes = -1.0
        for step in schedule.steps:
            flows = [(t.src, t.dst,
                      transfer_bytes(t, workload.data_bytes,
                                     schedule.num_chunks))
                     for t in step]
            total = sum(f[2] for f in flows)
            if total > best_bytes:
                best, best_bytes = flows, total
        return best

    # -- the event loop ------------------------------------------------------

    def run(self, jobs: Sequence[JobSpec],
            faults: Optional[FaultPlan] = None,
            retry: Optional[RetryPolicy] = None) -> ServingReport:
        """Serve ``jobs`` to completion and report fleet metrics.

        ``faults`` injects a :class:`~repro.faults.FaultPlan` into the
        event loop: when a node becomes impaired (node failure, or
        either endpoint of a failed link), every running job whose
        placement touches it is *killed* — its nodes are released, the
        node is withdrawn from the free pool, and the job is requeued
        after ``retry``'s exponential backoff, restarting from step
        zero.  Repairs return nodes to service and immediately backfill
        from the queue.  Jobs are never dropped silently: each either
        completes (its record notes the restart count) or lands in
        :attr:`ServingReport.failed_jobs` after ``retry.max_retries``
        kills.  ``faults=None`` (or the empty plan) is the documented
        bit-for-bit no-op — the fault-free event loop is unchanged.
        """
        pending = sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
        ids = [j.job_id for j in pending]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("job ids must be unique")
        sched = OnlineScheduler(capacity=self.capacity, policy=self.policy,
                                placement_mode=self.placement)
        running: Dict[int, _Running] = {}
        records: List[JobRecord] = []
        report = ServingReport(capacity=self.capacity,
                               substrate=self._substrate.name,
                               policy=self.policy,
                               collectives=self.collectives.label)
        faulty = faults is not None and bool(faults.events)
        timeline = faults.timeline() if faulty else None
        retry = retry if retry is not None else RetryPolicy()
        down: frozenset = frozenset()
        #: (retry_at, job_id, job) — job_id breaks ties deterministically.
        retry_heap: List[Tuple[float, int, JobSpec]] = []
        attempts: Dict[int, int] = {}
        now = 0.0
        idx = 0
        mix: Dict[str, int] = {}

        def start(placement: Placement) -> None:
            job = placement.job
            step_time, flows, algos = self._profile(job, placement.nodes)
            for algo in algos:
                mix[algo] = mix.get(algo, 0) + 1
            running[job.job_id] = _Running(
                placement=placement, step_time=step_time, flows=flows,
                algorithms=algos, remaining=float(job.num_steps))

        def kill(jid: int) -> None:
            r = running.pop(jid)
            sched.release(r.placement)
            report.preemptions += 1
            job = r.placement.job
            n = attempts.get(jid, 0) + 1
            attempts[jid] = n
            if n > retry.max_retries:
                report.failed_jobs.append(job)
            else:
                heapq.heappush(retry_heap,
                               (now + retry.delay(n), jid, job))

        while (running or idx < len(pending) or retry_heap
               or sched.queue_depth):
            next_arrival = (pending[idx].arrival_time
                            if idx < len(pending) else math.inf)
            next_completion = math.inf
            for r in running.values():
                next_completion = min(next_completion, r.completion_at(now))
            next_retry = retry_heap[0][0] if retry_heap else math.inf
            next_fault = timeline.next_change() if faulty else math.inf
            t = min(next_arrival, next_completion, next_retry, next_fault)
            if math.isinf(t):
                raise ScheduleError(
                    f"serving stalled at t={now}: {sched.queue_depth} "
                    f"job(s) queued, {sched.failed_nodes} node(s) down, "
                    f"and no pending repair or retry can free capacity")
            # Advance fluid progress to the event time.
            dt = t - now
            if dt > 0:
                for r in running.values():
                    r.remaining = max(
                        0.0, r.remaining - dt / r.rate_denominator)
                if down:
                    report.node_downtime += len(down) * dt
            now = t
            changed = False
            # Completions first (their nodes are free for this instant's
            # arrivals — and a job done by t survives a fault at t), in
            # job-id order for determinism.
            done = sorted(jid for jid, r in running.items()
                          if r.remaining <= _STEP_EPS)
            for jid in done:
                r = running.pop(jid)
                sched.release(r.placement)
                records.append(JobRecord(
                    job=r.placement.job, nodes=r.placement.nodes,
                    start_time=r.placement.start_time, completion_time=now,
                    step_time=r.step_time, algorithms=r.algorithms,
                    attempts=attempts.get(jid, 0)))
                changed = True
            # Fault-state changes at this instant: kill placements
            # touching newly impaired nodes (release before fail_nodes,
            # so the scheduler never sees an allocated node fail), then
            # withdraw/restore capacity.
            if faulty:
                state = timeline.advance(now)
                impaired = frozenset(state.impaired_hosts(self.capacity))
                newly_down = impaired - down
                newly_up = down - impaired
                if newly_down:
                    for jid in sorted(running):
                        r = running[jid]
                        if newly_down.intersection(r.placement.nodes):
                            kill(jid)
                    sched.fail_nodes(newly_down)
                    changed = True
                if newly_up:
                    sched.restore_nodes(newly_up)
                    changed = True
                down = impaired
            # Retries due at this instant (before fresh arrivals: a
            # killed job keeps its original policy position).
            while retry_heap and retry_heap[0][0] <= now:
                _, _, job = heapq.heappop(retry_heap)
                report.retries += 1
                placement = sched.submit(job, now)
                if placement is not None:
                    start(placement)
                    changed = True
            # Arrivals at this instant.
            while idx < len(pending) and pending[idx].arrival_time <= now:
                placement = sched.submit(pending[idx], now)
                if placement is not None:
                    start(placement)
                    changed = True
                idx += 1
            # Backfill from the queue in policy order.
            for placement in sched.admit_from_queue(now):
                start(placement)
                changed = True
            if changed and running:
                slow = self._contention.slowdowns(
                    {jid: r.flows for jid, r in running.items()})
                for jid, r in running.items():
                    r.slowdown = slow[jid]
            if faulty:
                sched.check_conservation()
            report.queue_samples.append((now, sched.queue_depth))

        records.sort(key=lambda r: (r.completion_time, r.job.job_id))
        report.records = records
        report.algorithm_mix = dict(sorted(mix.items()))
        report.cache_stats = cache_stats([self._substrate])
        if faulty:
            report.fault_events_applied = timeline.applied
        return report
