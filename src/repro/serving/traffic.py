"""The traffic engine: deterministic, seeded job-arrival processes.

Two sources, both returning plain ``List[JobSpec]`` sorted by arrival
(the engine replays them event by event, so a materialized list keeps
the whole run reproducible and inspectable):

* :func:`poisson_traffic` — an open-loop Poisson process: exponential
  inter-arrivals at ``arrival_rate`` jobs/s, every per-job attribute
  (model, class, world size, steps, priority) drawn from **one**
  :class:`numpy.random.Generator`, so an entire serving run is
  reproducible end to end from a single seed;
* :func:`trace_traffic` — trace replay: explicit job rows (dicts or
  ready :class:`~repro.serving.jobs.JobSpec`\\ s), validated and
  sorted.

The default mix interleaves bandwidth-bound training jobs (bucketed
gradient all-reduces, tens of MB per message) with latency-bound
inference jobs (per-layer activation all-reduces, KBs per message) —
the spread the scheduler's size-adaptive algorithm switch exists for.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..models.catalog import MODELS
from ..models.strategies import ParallelStrategy, parse_strategy
from .jobs import JobSpec, inference_message_sizes, strategy_jobs

__all__ = ["poisson_traffic", "strategy_traffic", "trace_traffic"]

#: Default model pool: the paper's four CNN catalogs.
DEFAULT_MODELS: Tuple[str, ...] = tuple(sorted(MODELS))

#: Default tensor-parallel hidden sizes for inference-style jobs
#: (1B-ish to 70B-ish transformer widths).
DEFAULT_HIDDEN_SIZES: Tuple[int, ...] = (1024, 4096, 8192)


def _resolve_rng(seed: Optional[int],
                 rng: Optional[np.random.Generator]) -> np.random.Generator:
    """``rng`` wins over ``seed`` (the repo-wide stochastic convention)."""
    if rng is not None:
        return rng
    return np.random.default_rng(0 if seed is None else seed)


def poisson_traffic(num_jobs: int,
                    arrival_rate: float,
                    seed: Optional[int] = 0,
                    rng: Optional[np.random.Generator] = None,
                    models: Sequence[str] = DEFAULT_MODELS,
                    node_choices: Sequence[int] = (4, 8, 16),
                    step_bounds: Tuple[int, int] = (5, 50),
                    priorities: Sequence[int] = (0, 1, 2),
                    inference_fraction: float = 0.5,
                    hidden_sizes: Sequence[int] = DEFAULT_HIDDEN_SIZES,
                    inference_layers: int = 4,
                    start_time: float = 0.0) -> List[JobSpec]:
    """A deterministic Poisson job stream (``num_jobs`` arrivals).

    Inter-arrival gaps are exponential with mean ``1/arrival_rate``;
    each job is a training job with probability
    ``1 - inference_fraction`` (message sizes bucketized from a
    uniformly drawn catalog model) or an inference-style job
    (``inference_layers`` activation messages of a drawn hidden size
    per step).  All randomness flows through one generator — pass
    ``rng`` to chain the stream into a larger seeded experiment, or
    ``seed`` to stand alone.
    """
    if num_jobs < 0:
        raise ConfigurationError("num_jobs must be >= 0")
    if arrival_rate <= 0:
        raise ConfigurationError("arrival_rate must be > 0")
    if not models or not node_choices or not priorities or not hidden_sizes:
        raise ConfigurationError(
            "models, node_choices, priorities, hidden_sizes must be "
            "non-empty")
    lo, hi = step_bounds
    if lo < 1 or hi < lo:
        raise ConfigurationError(
            f"step_bounds must satisfy 1 <= lo <= hi, got {step_bounds}")
    if not 0.0 <= inference_fraction <= 1.0:
        raise ConfigurationError("inference_fraction must be in [0, 1]")
    gen = _resolve_rng(seed, rng)
    models = tuple(models)
    node_choices = tuple(int(n) for n in node_choices)
    priorities = tuple(int(p) for p in priorities)
    hidden_sizes = tuple(int(h) for h in hidden_sizes)

    jobs: List[JobSpec] = []
    now = float(start_time)
    for job_id in range(num_jobs):
        now += float(gen.exponential(1.0 / arrival_rate))
        model = models[int(gen.integers(len(models)))]
        num_nodes = node_choices[int(gen.integers(len(node_choices)))]
        num_steps = int(gen.integers(lo, hi + 1))
        priority = priorities[int(gen.integers(len(priorities)))]
        sizes: Optional[Tuple[float, ...]] = None
        if float(gen.random()) < inference_fraction:
            hidden = hidden_sizes[int(gen.integers(len(hidden_sizes)))]
            sizes = inference_message_sizes(hidden, inference_layers)
        jobs.append(JobSpec(job_id=job_id, model=model, arrival_time=now,
                            num_steps=num_steps, num_nodes=num_nodes,
                            priority=priority, message_sizes=sizes))
    return jobs


def strategy_traffic(num_arrivals: int,
                     model: str,
                     strategy: Any,
                     world: Optional[int] = None,
                     arrival_rate: float = 20.0,
                     seed: Optional[int] = 0,
                     rng: Optional[np.random.Generator] = None,
                     step_bounds: Tuple[int, int] = (5, 50),
                     start_time: float = 0.0,
                     **lower_kwargs) -> List[JobSpec]:
    """A Poisson stream of strategy-lowered training jobs.

    Each of the ``num_arrivals`` arrivals is one training run of
    ``model`` under ``strategy`` (a
    :class:`~repro.models.strategies.ParallelStrategy`, or a spec /
    preset string sized by ``world``), expanded through
    :func:`~repro.serving.jobs.strategy_jobs` into one serving job per
    collective group — so a ``dp4+tp2`` arrival lands as its two DP
    groups plus four TP groups, each with its own per-step message
    list.  Steps per arrival are drawn uniformly from ``step_bounds``;
    all randomness flows through one generator (the repo-wide seeding
    convention).  ``lower_kwargs`` pass through to the lowering.
    """
    if num_arrivals < 0:
        raise ConfigurationError("num_arrivals must be >= 0")
    if arrival_rate <= 0:
        raise ConfigurationError("arrival_rate must be > 0")
    lo, hi = step_bounds
    if lo < 1 or hi < lo:
        raise ConfigurationError(
            f"step_bounds must satisfy 1 <= lo <= hi, got {step_bounds}")
    if not isinstance(strategy, ParallelStrategy):
        strategy = parse_strategy(strategy, world=world)
    gen = _resolve_rng(seed, rng)
    jobs: List[JobSpec] = []
    now = float(start_time)
    next_id = 0
    for _ in range(num_arrivals):
        now += float(gen.exponential(1.0 / arrival_rate))
        num_steps = int(gen.integers(lo, hi + 1))
        batch = strategy_jobs(model, strategy, arrival_time=now,
                              start_id=next_id, num_steps=num_steps,
                              **lower_kwargs)
        next_id += len(batch)
        jobs.extend(batch)
    return jobs


def trace_traffic(rows: Iterable[Any]) -> List[JobSpec]:
    """Trace-driven traffic: replay explicit job rows.

    Each row is a ready :class:`~repro.serving.jobs.JobSpec` or a
    mapping of ``JobSpec`` fields (``job_id`` defaults to the row
    index).  Rows are validated and returned sorted by
    ``(arrival_time, job_id)`` — the order the engine consumes.
    """
    jobs: List[JobSpec] = []
    for idx, row in enumerate(rows):
        if isinstance(row, JobSpec):
            jobs.append(row)
            continue
        if not isinstance(row, Mapping):
            raise ConfigurationError(
                f"trace row {idx} must be a JobSpec or a mapping, "
                f"got {type(row).__name__}")
        fields = dict(row)
        fields.setdefault("job_id", idx)
        if "message_sizes" in fields and fields["message_sizes"] is not None:
            fields["message_sizes"] = tuple(
                float(m) for m in fields["message_sizes"])
        try:
            jobs.append(JobSpec(**fields))
        except TypeError as exc:
            raise ConfigurationError(
                f"trace row {idx}: bad JobSpec fields ({exc})") from None
    ids = [j.job_id for j in jobs]
    if len(set(ids)) != len(ids):
        raise ConfigurationError("trace job_ids must be unique")
    return sorted(jobs, key=lambda j: (j.arrival_time, j.job_id))
