"""The online admission/placement scheduler.

:class:`OnlineScheduler` owns the shared substrate's node space: jobs
are *placed* onto node sets the moment capacity allows, and *queued*
otherwise — admission beyond capacity never drops, it waits.  When a
job completes its nodes return to the free pool (adjacent free ranges
coalesce) and the queue is re-scanned in policy order.

Two placement modes, because they trade queueing against interference:

* ``"contiguous"`` (default) — first-fit into the lowest contiguous
  free range.  On ring fabrics a contiguous arc keeps every
  shortest-path route inside the job's own slice, so contiguous
  neighbours do not contend — but fragmentation makes wide jobs wait;
* ``"scatter"`` — contiguous first when possible, else gather the
  lowest free fragments.  Scattered jobs start sooner, but their flows
  cross other jobs' arcs and the shared-link contention the fluid
  batch models becomes real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from .jobs import JobSpec
from .policies import policy_key

__all__ = ["Placement", "OnlineScheduler"]

PLACEMENT_MODES = ("contiguous", "scatter")


@dataclass(frozen=True)
class Placement:
    """A job bound to ``nodes`` (sorted global ids; rank i = nodes[i])."""

    job: JobSpec
    nodes: Tuple[int, ...]
    start_time: float

    @property
    def offset(self) -> int:
        """Lowest node of the placement (= the offset when contiguous)."""
        return self.nodes[0]

    @property
    def is_contiguous(self) -> bool:
        """Whether the placement is one unbroken range."""
        return self.nodes[-1] - self.nodes[0] + 1 == len(self.nodes)


@dataclass
class OnlineScheduler:
    """Node-set placement with a policy-ordered wait queue."""

    capacity: int
    policy: str = "fifo"
    placement_mode: str = "contiguous"
    #: Sorted disjoint free ranges as half-open ``(start, end)`` pairs.
    _free: List[Tuple[int, int]] = field(default_factory=list)
    _queue: List[JobSpec] = field(default_factory=list)
    #: Nodes withdrawn from service by :meth:`fail_nodes`.
    _failed: Set[int] = field(default_factory=set)
    #: Nodes currently bound to placements (conservation counter).
    _allocated: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ConfigurationError(
                f"substrate capacity must be >= 2 nodes, "
                f"got {self.capacity}")
        if self.placement_mode not in PLACEMENT_MODES:
            raise ConfigurationError(
                f"placement_mode must be one of {PLACEMENT_MODES}, "
                f"got {self.placement_mode!r}")
        self._key = policy_key(self.policy)
        if not self._free:
            self._free = [(0, self.capacity)]

    # -- queries --------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Jobs currently waiting for capacity."""
        return len(self._queue)

    @property
    def free_nodes(self) -> int:
        """Total unallocated nodes (may be fragmented)."""
        return sum(end - start for start, end in self._free)

    @property
    def allocated_nodes(self) -> int:
        """Nodes currently bound to placements."""
        return self._allocated

    @property
    def failed_nodes(self) -> int:
        """Nodes currently withdrawn from service."""
        return len(self._failed)

    def failed_node_ids(self) -> Tuple[int, ...]:
        """The withdrawn node ids, sorted."""
        return tuple(sorted(self._failed))

    def check_conservation(self) -> None:
        """Assert free + allocated + failed == capacity.

        Every mutation preserves this identity; a violation means nodes
        leaked (lost capacity) or were double-counted (phantom
        capacity), so the serving engine's fault tests call this after
        every event.
        """
        total = self.free_nodes + self._allocated + len(self._failed)
        if total != self.capacity:
            raise ConfigurationError(
                f"node conservation violated: free={self.free_nodes} + "
                f"allocated={self._allocated} + "
                f"failed={len(self._failed)} != capacity={self.capacity}")

    def queued_jobs(self) -> List[JobSpec]:
        """The wait queue in admission (policy) order."""
        return sorted(self._queue, key=self._key)

    # -- admission ------------------------------------------------------------

    def submit(self, job: JobSpec, now: float) -> Optional[Placement]:
        """Admit ``job`` if it fits right now, else queue it.

        Direct placement is only attempted when the wait queue is
        empty: once anything is waiting, the policy order — not
        arrival luck — decides who runs next, so the new job joins the
        queue and :meth:`admit_from_queue` places it (or not) in its
        policy position.  Otherwise a narrow late arrival could slip
        into capacity the queued head cannot use and starve it.

        Jobs wider than the whole substrate can never run and raise
        immediately (a queue they can never leave would be a silent
        hang, not scheduling).
        """
        if job.num_nodes > self.capacity:
            raise ConfigurationError(
                f"job {job.job_id} wants {job.num_nodes} nodes but the "
                f"substrate has {self.capacity}")
        nodes = self._allocate(job.num_nodes) if not self._queue else None
        if nodes is None:
            self._queue.append(job)
            return None
        return Placement(job=job, nodes=nodes, start_time=now)

    def admit_from_queue(self, now: float) -> List[Placement]:
        """Place every queued job that now fits, in policy order.

        The scan is head-of-line honest: it stops at the first queued
        job (in policy order) that does not fit, so a wide job is never
        starved by narrow jobs arriving behind it.
        """
        placed: List[Placement] = []
        # Policy keys are pure functions of the job, so one sort per
        # call suffices — placements do not reorder the remainder.
        for head in sorted(self._queue, key=self._key):
            nodes = self._allocate(head.num_nodes)
            if nodes is None:
                break
            self._queue.remove(head)
            placed.append(Placement(job=head, nodes=nodes, start_time=now))
        return placed

    def release(self, placement: Placement) -> None:
        """Return a completed (or killed) job's nodes to the free pool."""
        self._insert_free(_runs(placement.nodes))
        self._allocated -= len(placement.nodes)

    # -- failure masking ------------------------------------------------------

    def fail_nodes(self, nodes: Iterable[int]) -> None:
        """Withdraw ``nodes`` from service (idempotent per node).

        Failed nodes leave the free pool entirely: they cannot be
        allocated until :meth:`restore_nodes` returns them.  A node
        that is currently *allocated* cannot fail here — the serving
        engine must kill (and release) the placements touching it
        first, so capacity accounting stays single-owner:
        free + allocated + failed == capacity always.
        """
        for node in sorted(set(nodes)):
            if node < 0 or node >= self.capacity:
                raise ConfigurationError(
                    f"failed node {node} outside [0, {self.capacity})")
            if node in self._failed:
                continue
            if not self._carve_free(node):
                raise ConfigurationError(
                    f"cannot fail node {node}: it is allocated — "
                    f"release its placement first")
            self._failed.add(node)

    def restore_nodes(self, nodes: Iterable[int]) -> None:
        """Return repaired ``nodes`` to the free pool (idempotent)."""
        back = [n for n in sorted(set(nodes)) if n in self._failed]
        if not back:
            return
        self._failed.difference_update(back)
        self._insert_free(_runs(tuple(back)))

    # -- internals ------------------------------------------------------------

    def _carve_free(self, node: int) -> bool:
        """Remove one node from the free pool; False if not free."""
        for idx, (start, end) in enumerate(self._free):
            if start <= node < end:
                repl = [(start, node), (node + 1, end)]
                self._free[idx:idx + 1] = [
                    (lo, hi) for lo, hi in repl if lo < hi]
                return True
        return False

    def _insert_free(self, runs: List[Tuple[int, int]]) -> None:
        """Merge half-open runs into the free pool (no overlaps)."""
        self._free.extend(runs)
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for lo, hi in self._free:
            if merged and lo <= merged[-1][1]:
                if lo < merged[-1][1]:
                    raise ConfigurationError(
                        f"double release of nodes [{lo}, "
                        f"{min(hi, merged[-1][1])})")
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        self._free = merged

    def _allocate(self, width: int) -> Optional[Tuple[int, ...]]:
        """Carve ``width`` nodes from the free pool (or ``None``).

        Contiguous first-fit at the lowest offset; in ``"scatter"``
        mode, a fragmented fallback gathers the lowest free nodes when
        no single range is wide enough.
        """
        for idx, (start, end) in enumerate(self._free):
            if end - start >= width:
                if end - start == width:
                    del self._free[idx]
                else:
                    self._free[idx] = (start + width, end)
                self._allocated += width
                return tuple(range(start, start + width))
        if self.placement_mode != "scatter" or self.free_nodes < width:
            return None
        nodes: List[int] = []
        need = width
        while need:
            start, end = self._free[0]
            take = min(need, end - start)
            nodes.extend(range(start, start + take))
            if start + take == end:
                del self._free[0]
            else:
                self._free[0] = (start + take, end)
            need -= take
        self._allocated += width
        return tuple(nodes)


def _runs(nodes: Tuple[int, ...]) -> List[Tuple[int, int]]:
    """Sorted node ids -> maximal half-open ``(start, end)`` runs."""
    runs: List[Tuple[int, int]] = []
    for n in nodes:
        if runs and n == runs[-1][1]:
            runs[-1] = (runs[-1][0], n + 1)
        else:
            runs.append((n, n + 1))
    return runs
