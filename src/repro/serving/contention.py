"""Inter-job contention through the shared fluid engine.

Concurrent jobs do not time-slice the fabric — their transfers coexist
on it.  The contention model makes that literal: every running job
contributes its *representative flows* (the transfers of its heaviest
schedule step, re-based to its placement) and all of them are solved as
**one** :meth:`~repro.simulation.fluid.FluidNetworkSimulator.
step_profile` batch.  Max-min fair sharing on the shared links then
yields, per job, the ratio of its contended finish time to its solo
finish time — the *slowdown* the serving engine stretches that job's
step time by for as long as the concurrency set holds.

Because both the combined and the solo batches go through the fluid
engine's pattern cache, epochs that repeat a concurrency set (steady
state under a stationary arrival process) cost a cache lookup, not a
solve — the PR 3/6 caches are what make thousand-job streams cheap.

A lone job's combined batch *is* its solo batch, so its slowdown is
exactly 1.0 — single-job serving runs reproduce standalone execution
bit for bit.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..config import (ElectricalSystem, HierarchicalSystem,
                      OpticalRingSystem, OpticalTorusSystem)
from ..simulation.fluid import FluidNetworkSimulator
from ..topology.base import Topology
from ..topology.ring import RingTopology
from ..topology.switched import SwitchedStar

__all__ = ["ContentionModel", "contention_topology"]

Flow = Tuple[int, int, float]


def contention_topology(system: object) -> Optional[Topology]:
    """A fluid topology mirroring ``system``'s shared physical links.

    * electrical ring / switch — the exact topologies the electrical
      substrate simulates on;
    * optical ring — a bidirectional ring whose link capacity is the
      full WDM aggregate (``num_wavelengths x wavelength_rate``): the
      fluid view of wavelength sharing, coarser than RWA but with the
      same shared-arc structure;
    * optical torus — modelling it by an aggregate link rate on a ring
      of the same scale would *not* be faithful to its 2-D routing, so
      the torus (like the hierarchical fabric and any unknown system)
      returns ``None``: no cross-job contention is modelled at all and
      concurrent jobs interact only through queueing.
    """
    if isinstance(system, ElectricalSystem):
        if system.topology == "ring":
            return RingTopology(system.num_nodes, system.link_rate,
                                bidirectional=True)
        return SwitchedStar(system.num_nodes, system.effective_port_rate)
    if isinstance(system, OpticalRingSystem):
        return RingTopology(system.num_nodes, system.node_injection_rate,
                            bidirectional=system.bidirectional)
    if isinstance(system, (OpticalTorusSystem, HierarchicalSystem)):
        return None
    return None


class ContentionModel:
    """Per-epoch job slowdowns from one combined fluid batch."""

    def __init__(self, topology: Optional[Topology]) -> None:
        self._sim = (FluidNetworkSimulator(topology)
                     if topology is not None else None)

    @property
    def simulator(self) -> Optional[FluidNetworkSimulator]:
        """The underlying fluid simulator (``None`` = contention off)."""
        return self._sim

    def slowdowns(self, flows_by_job: Mapping[int, Sequence[Flow]]
                  ) -> Dict[int, float]:
        """Slowdown factor (``>= 1.0``) per job id.

        ``flows_by_job`` maps each running job to its representative
        ``(src, dst, bytes)`` flows on *global* node ids.  Jobs occupy
        disjoint node sets, so flow endpoints never collide across
        jobs and per-pair finish times can be attributed unambiguously.
        Contiguous placements on a ring rarely interfere (shortest
        paths stay inside each job's arc); scattered placements route
        through other jobs' arcs and genuinely contend.
        """
        out = {job_id: 1.0 for job_id in flows_by_job}
        if self._sim is None or len(flows_by_job) <= 1:
            return out
        combined = [f for flows in flows_by_job.values() for f in flows]
        if not combined:
            return out
        profile = self._sim.step_profile(combined)
        finish = {}
        for pair, t in zip(profile.pairs, profile.finish_times):
            finish[pair] = max(finish.get(pair, 0.0), float(t))
        for job_id, flows in flows_by_job.items():
            if not flows:
                continue
            contended = max(finish[(s, d)] for s, d, _ in flows)
            solo = self._sim.step_profile(flows).makespan
            if solo > 0.0:
                out[job_id] = max(1.0, contended / solo)
        return out
