"""Size-adaptive collective dispatch and schedule placement.

The serving scheduler picks a collective *per message*, mirroring the
kernel dispatch of the MAX inference stack's allreduce (a 1-stage
latency-bound kernel below a size threshold, a 2-stage bandwidth-bound
kernel above it):

* **small** messages go to a latency-optimal algorithm — recursive
  doubling (log2 N full-payload exchanges) or a binomial tree — where
  per-step overheads dominate;
* **large** messages go to a bandwidth-optimal algorithm — the ring
  (2(N-1) steps of S/N) — where serialization dominates.

:class:`CollectivePolicy` is the switch; ``fixed_policy`` pins one
algorithm for ablations (the serving bench runs adaptive vs fixed-ring
vs fixed-RD on the same traffic).  :func:`~repro.collectives.placement.
place_schedule` re-bases a rank-0-rooted schedule onto a node range of
the shared substrate; it lives in the collectives core now (the
strategy co-planner places per-phase groups with it too) and is
re-exported here for the serving call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .. import units
from ..collectives.binomial_tree import generate_binomial_tree
from ..collectives.halving_doubling import generate_halving_doubling
from ..collectives.placement import place_schedule
from ..collectives.recursive_doubling import generate_recursive_doubling
from ..collectives.ring_allreduce import generate_ring_allreduce
from ..collectives.schedule import Schedule
from ..errors import ConfigurationError

__all__ = ["CollectivePolicy", "adaptive_policy", "fixed_policy",
           "generate_collective", "place_schedule",
           "DEFAULT_SWITCH_BYTES", "COLLECTIVE_GENERATORS",
           "PLANNED_COLLECTIVES"]

#: Below this size a message is latency-bound (the 1-stage/2-stage
#: split of the MAX allreduce kernel, scaled to fabric-level payloads).
DEFAULT_SWITCH_BYTES = 1 * units.MB

#: Registered collective generators by algorithm name.
COLLECTIVE_GENERATORS: Dict[str, Callable[[int], Schedule]] = {
    "ring": generate_ring_allreduce,
    "recursive-doubling": generate_recursive_doubling,
    "halving-doubling": generate_halving_doubling,
    "binomial-tree": generate_binomial_tree,
}

#: Algorithms that need a system + payload to plan (the serving engine
#: resolves these through :func:`repro.core.planner.plan_wrht`), so
#: they are valid policy arms but have no system-free generator here.
PLANNED_COLLECTIVES: Tuple[str, ...] = ("wrht",)


def generate_collective(algorithm: str, num_nodes: int) -> Schedule:
    """Generate the ``algorithm`` all-reduce over ``num_nodes`` ranks."""
    try:
        gen = COLLECTIVE_GENERATORS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown collective {algorithm!r}; choose from "
            f"{tuple(sorted(COLLECTIVE_GENERATORS))}") from None
    return gen(num_nodes)


@dataclass(frozen=True)
class CollectivePolicy:
    """The per-message algorithm switch.

    ``select`` returns ``small_algorithm`` for messages strictly below
    ``switch_bytes`` and ``large_algorithm`` otherwise.  A fixed policy
    is just both arms set to the same algorithm.
    """

    small_algorithm: str = "recursive-doubling"
    large_algorithm: str = "ring"
    switch_bytes: float = DEFAULT_SWITCH_BYTES

    def __post_init__(self) -> None:
        known = tuple(sorted(COLLECTIVE_GENERATORS)) + PLANNED_COLLECTIVES
        for algo in (self.small_algorithm, self.large_algorithm):
            if algo not in known:
                raise ConfigurationError(
                    f"unknown collective {algo!r}; choose from {known}")
        if self.switch_bytes < 0:
            raise ConfigurationError("switch_bytes must be >= 0")

    @property
    def is_adaptive(self) -> bool:
        """Whether the two arms can ever differ."""
        return self.small_algorithm != self.large_algorithm

    def select(self, message_bytes: float) -> str:
        """Algorithm name for one message of ``message_bytes``."""
        if message_bytes < self.switch_bytes:
            return self.small_algorithm
        return self.large_algorithm

    @property
    def label(self) -> str:
        """Human-readable policy name for reports."""
        if not self.is_adaptive:
            return self.large_algorithm
        return (f"adaptive(<{units.fmt_bytes(self.switch_bytes)}: "
                f"{self.small_algorithm}, else {self.large_algorithm})")


def adaptive_policy(switch_bytes: float = DEFAULT_SWITCH_BYTES,
                    small_algorithm: str = "recursive-doubling",
                    large_algorithm: str = "ring") -> CollectivePolicy:
    """The default size-adaptive switch."""
    return CollectivePolicy(small_algorithm=small_algorithm,
                            large_algorithm=large_algorithm,
                            switch_bytes=switch_bytes)


def fixed_policy(algorithm: str) -> CollectivePolicy:
    """A degenerate policy that always picks ``algorithm``."""
    return CollectivePolicy(small_algorithm=algorithm,
                            large_algorithm=algorithm)


# place_schedule is re-exported from repro.collectives.placement (see
# module docstring); serving call sites keep importing it from here.
