"""The serving layer: streaming multi-job traffic on a shared substrate.

Everything below this package executes one collective for one job; the
serving layer is the step toward the "heavy traffic" north star — a
fleet of concurrent training/inference jobs contending for one warm
fabric:

* **jobs** (:mod:`~repro.serving.jobs`) — the demand model: catalog
  model, arrival, steps, priority, and per-step all-reduce message
  sizes derived from layer shapes via gradient bucketing (or explicit
  activation-sized messages for inference-style jobs);
* **traffic** (:mod:`~repro.serving.traffic`) — deterministic seeded
  arrival processes: Poisson and trace replay, all randomness through
  one :class:`numpy.random.Generator`;
* **scheduler** (:mod:`~repro.serving.scheduler` +
  :mod:`~repro.serving.policies`) — online admission onto contiguous
  node ranges with FIFO/SJF/priority queueing (beyond-capacity
  arrivals queue, never drop);
* **dispatch** (:mod:`~repro.serving.dispatch`) — the size-adaptive
  collective switch: latency-optimal algorithms below the message-size
  threshold, bandwidth-optimal above (the 1-stage/2-stage split of
  LLM-stack allreduce kernels, lifted to fabric level);
* **contention** (:mod:`~repro.serving.contention`) — concurrent jobs'
  transfers solved as one shared
  :class:`~repro.simulation.fluid.FluidNetworkSimulator` batch, so
  inter-job interference falls out of max-min fair sharing;
* **engine** (:mod:`~repro.serving.engine`) — the event loop tying it
  together, reporting throughput, mean/p50/p99 job-completion time,
  queue depth, and substrate cache-hit tables.
"""

from .contention import ContentionModel, contention_topology
from .dispatch import (COLLECTIVE_GENERATORS, DEFAULT_SWITCH_BYTES,
                       PLANNED_COLLECTIVES, CollectivePolicy,
                       adaptive_policy, fixed_policy, generate_collective,
                       place_schedule)
from .engine import JobRecord, RetryPolicy, ServingEngine, ServingReport
from .jobs import JobSpec, inference_message_sizes, strategy_jobs
from .policies import POLICIES, available_policies, policy_key
from .scheduler import OnlineScheduler, Placement
from .traffic import poisson_traffic, strategy_traffic, trace_traffic

__all__ = [
    "JobSpec",
    "inference_message_sizes",
    "poisson_traffic",
    "strategy_traffic",
    "trace_traffic",
    "strategy_jobs",
    "POLICIES",
    "available_policies",
    "policy_key",
    "OnlineScheduler",
    "Placement",
    "CollectivePolicy",
    "adaptive_policy",
    "fixed_policy",
    "generate_collective",
    "place_schedule",
    "COLLECTIVE_GENERATORS",
    "PLANNED_COLLECTIVES",
    "DEFAULT_SWITCH_BYTES",
    "ContentionModel",
    "contention_topology",
    "ServingEngine",
    "ServingReport",
    "JobRecord",
    "RetryPolicy",
]
