"""Queue-ordering policies for the online scheduler.

A policy is a pure sort key over :class:`~repro.serving.jobs.JobSpec`:
the scheduler keeps its wait queue sorted by the active policy and
admits from the front.  Every key ends with ``(arrival_time, job_id)``
so ties break deterministically — two runs of the same traffic produce
the same admission order, which the serving tests pin.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..errors import ConfigurationError
from .jobs import JobSpec

__all__ = ["POLICIES", "policy_key", "available_policies"]

PolicyKey = Callable[[JobSpec], Tuple]


def _fifo_key(job: JobSpec) -> Tuple:
    return (job.arrival_time, job.job_id)


def _sjf_key(job: JobSpec) -> Tuple:
    return (job.estimated_work, job.arrival_time, job.job_id)


def _priority_key(job: JobSpec) -> Tuple:
    return (-job.priority, job.arrival_time, job.job_id)


#: Registered queue-ordering policies (name -> sort key).
POLICIES: Dict[str, PolicyKey] = {
    "fifo": _fifo_key,
    "sjf": _sjf_key,
    "priority": _priority_key,
}


def available_policies() -> Tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(POLICIES))


def policy_key(name: str) -> PolicyKey:
    """The sort key registered under ``name``."""
    try:
        return POLICIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduling policy {name!r}; choose from "
            f"{available_policies()}") from None
