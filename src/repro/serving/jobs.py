"""The serving job model: what one unit of traffic asks of the fabric.

A :class:`JobSpec` is a *demand description*, not an execution state:
which catalog model it trains (or serves), when it arrives, how many
steps it runs, how many nodes it wants, and how its per-step all-reduce
message sizes are derived.  Two derivations exist, mirroring the two
traffic classes of an LLM serving stack:

* **training** jobs all-reduce their gradients in DDP-style buckets —
  the sizes come from
  :func:`repro.models.gradients.allreduce_message_sizes` applied to the
  catalog model's layer map (bucket-size knob, dtype-aware);
* **inference-style** jobs all-reduce small per-layer activations
  (``batch x seq x hidden`` elements, the shape the Modular MAX stack
  reduces after every attention/MLP block) — tiny messages repeated
  for many steps, the latency-bound end of the spectrum.

Explicit ``message_sizes`` override both (trace replay, parity tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..models.catalog import get_model
from ..models.gradients import DEFAULT_BUCKET_BYTES, allreduce_message_sizes
from ..models.strategies import ParallelStrategy, parse_strategy

__all__ = ["JobSpec", "inference_message_sizes", "strategy_jobs"]


def inference_message_sizes(hidden_size: int, num_layers: int,
                            batch_size: int = 1, seq_len: int = 1,
                            dtype_bytes: int = 2) -> Tuple[float, ...]:
    """Per-step all-reduce sizes of a tensor-parallel inference step.

    One decode step reduces each transformer layer's output activation
    of shape ``[batch, seq, hidden]`` (the per-block attention/MLP
    all-reduce of the MAX inference stack), so a step injects
    ``num_layers`` messages of ``batch * seq * hidden * dtype`` bytes.
    """
    if hidden_size < 1 or num_layers < 1 or batch_size < 1 or seq_len < 1:
        raise ConfigurationError(
            "hidden_size, num_layers, batch_size, seq_len must be >= 1")
    if dtype_bytes < 1:
        raise ConfigurationError("dtype_bytes must be >= 1")
    nbytes = float(batch_size * seq_len * hidden_size * dtype_bytes)
    return (nbytes,) * num_layers


@dataclass(frozen=True)
class JobSpec:
    """One job of the serving stream.

    Parameters
    ----------
    job_id:
        Unique id; also the deterministic last-resort tie-break every
        scheduling policy falls back to.
    model:
        Catalog model name (:func:`repro.models.catalog.get_model`).
    arrival_time:
        When the job enters the system (simulated seconds).
    num_steps:
        Training/decode steps to run; each step all-reduces every
        message in :meth:`resolve_message_sizes` once.
    num_nodes:
        World size requested from the shared substrate.
    priority:
        Larger = more urgent (only the ``"priority"`` policy reads it).
    bucket_bytes / dtype_bytes:
        Gradient-bucket fusion knobs for the derived message sizes.
    message_sizes:
        Explicit per-step message list in bytes; overrides the
        model-derived sizing when given (inference jobs, traces,
        parity tests).
    """

    job_id: int
    model: str
    arrival_time: float
    num_steps: int = 1
    num_nodes: int = 8
    priority: int = 0
    bucket_bytes: float = DEFAULT_BUCKET_BYTES
    dtype_bytes: int = 4
    message_sizes: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigurationError(
                f"job {self.job_id}: arrival_time must be >= 0")
        if self.num_steps < 1:
            raise ConfigurationError(
                f"job {self.job_id}: num_steps must be >= 1")
        if self.num_nodes < 2:
            raise ConfigurationError(
                f"job {self.job_id}: num_nodes must be >= 2 "
                f"(a one-node job has nothing to all-reduce)")
        if self.bucket_bytes <= 0:
            raise ConfigurationError(
                f"job {self.job_id}: bucket_bytes must be > 0")
        if self.dtype_bytes < 1:
            raise ConfigurationError(
                f"job {self.job_id}: dtype_bytes must be >= 1")
        if self.message_sizes is not None:
            if not self.message_sizes:
                raise ConfigurationError(
                    f"job {self.job_id}: message_sizes must be non-empty")
            if any(m <= 0 for m in self.message_sizes):
                raise ConfigurationError(
                    f"job {self.job_id}: message sizes must be > 0")

    def resolve_message_sizes(self) -> Tuple[float, ...]:
        """The per-step all-reduce message sizes in bytes.

        Explicit sizes win; otherwise the catalog model's gradients are
        bucketized (the training-job derivation).  Resolved once per
        job — policy sort keys evaluate this on every admission scan,
        and re-bucketizing the catalog model each time would dominate
        the scheduler.
        """
        return self._resolved_sizes

    @cached_property
    def _resolved_sizes(self) -> Tuple[float, ...]:
        if self.message_sizes is not None:
            return tuple(float(m) for m in self.message_sizes)
        return tuple(float(n) for n in allreduce_message_sizes(
            get_model(self.model), bucket_bytes=self.bucket_bytes,
            dtype_bytes=self.dtype_bytes))

    @property
    def bytes_per_step(self) -> float:
        """Total bytes all-reduced per step (sum of the messages)."""
        return float(sum(self._resolved_sizes))

    @property
    def estimated_work(self) -> float:
        """Service-demand proxy the SJF policy orders by:
        ``steps x bytes-per-step`` (node count cancels to first order —
        ring serialization moves ~``S`` bytes per node regardless of
        ``N``)."""
        return self.num_steps * self.bytes_per_step


def strategy_jobs(model: str,
                  strategy: Union[str, ParallelStrategy],
                  world: Optional[int] = None,
                  arrival_time: float = 0.0,
                  start_id: int = 0,
                  num_steps: int = 1,
                  priority: int = 0,
                  **lower_kwargs) -> List[JobSpec]:
    """One training job's collective groups as serving jobs.

    Lowers ``strategy`` (a :class:`~repro.models.strategies.
    ParallelStrategy` or a spec like ``"dp4+tp2"`` / a preset sized by
    ``world``) over the catalog ``model`` and emits one
    :class:`JobSpec` per distinct collective *group*: the group's
    per-step ``message_sizes`` are the concatenation, in phase order,
    of every phase that group participates in (a pure-DP strategy
    therefore yields exactly one full-width job carrying the legacy
    gradient-bucket list).  The serving scheduler places each group on
    whatever nodes it finds — group *shapes and sizes* carry over; the
    strategy's rank layout is the scheduler's to re-derive.

    ``lower_kwargs`` pass through to ``ParallelStrategy.lower``
    (``batch_size``, ``bucket_bytes``, ``microbatches``, ...).
    """
    if not isinstance(strategy, ParallelStrategy):
        strategy = parse_strategy(strategy, world=world)
    elif world is not None and strategy.world != world:
        raise ConfigurationError(
            f"strategy {strategy.name!r} spans {strategy.world} ranks, "
            f"but world={world} was requested")
    profile = strategy.lower(get_model(model), **lower_kwargs)
    by_group: "dict[Tuple[int, ...], List[float]]" = {}
    for phase in profile.phases:
        for grp in phase.groups:
            by_group.setdefault(grp, []).extend(
                [phase.message_bytes] * phase.count)
    jobs: List[JobSpec] = []
    for offset, (grp, sizes) in enumerate(by_group.items()):
        jobs.append(JobSpec(
            job_id=start_id + offset, model=model,
            arrival_time=arrival_time, num_steps=num_steps,
            num_nodes=len(grp), priority=priority,
            message_sizes=tuple(sizes)))
    return jobs
