"""Execution timelines: Gantt rendering and JSON export.

Turns an :class:`~repro.core.executor.ExecutionReport` into artifacts a
user can inspect or feed to tooling:

* :func:`render_timeline` — per-step Gantt bars with the time
  decomposition (tuning / overhead / serialization / propagation);
* :func:`report_to_dict` / :func:`report_to_json` — lossless structured
  export of the report.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .. import units
from ..core.executor import ExecutionReport

_GANTT_WIDTH = 50


def render_timeline(report: ExecutionReport, width: int = _GANTT_WIDTH,
                    ) -> str:
    """ASCII Gantt chart of a report's steps.

    Each row is one synchronous step; bar length is proportional to the
    step duration, annotated with the dominant component.
    """
    if not report.steps:
        return f"{report.schedule_name}: empty schedule (0 steps)"
    total = report.total_time
    lines = [f"{report.schedule_name} on {report.substrate}: "
             f"{units.fmt_time(total)} over {report.num_steps} steps"]
    start = 0.0
    for step in report.steps:
        frac_start = start / total if total else 0.0
        frac_len = step.duration / total if total else 0.0
        pad = int(frac_start * width)
        bar = max(1, int(round(frac_len * width)))
        components = {
            "tune": step.tuning_time,
            "sync": step.overhead_time,
            "ser": step.serialization_time,
            "prop": step.propagation_time,
        }
        dominant = max(components, key=components.get)
        lines.append(
            f"  step {step.index:>3} "
            f"|{' ' * pad}{'#' * bar}{' ' * max(width - pad - bar, 0)}| "
            f"{units.fmt_time(step.duration):>12} ({dominant}-bound"
            + (f", x{step.striping} stripes" if step.striping > 1 else "")
            + ")")
        start += step.duration
    ser = report.total_serialization
    lines.append(f"  serialization {units.fmt_time(ser)} "
                 f"({ser / total:.0%}), overheads "
                 f"{units.fmt_time(report.total_overhead)} "
                 f"({report.total_overhead / total:.0%})")
    return "\n".join(lines)


def report_to_dict(report: ExecutionReport) -> Dict:
    """Structured (JSON-ready) form of an execution report."""
    return {
        "schedule": report.schedule_name,
        "substrate": report.substrate,
        "total_time_s": report.total_time,
        "num_steps": report.num_steps,
        "total_serialization_s": report.total_serialization,
        "total_overhead_s": report.total_overhead,
        "peak_wavelength_demand": report.peak_wavelength_demand(),
        "steps": [
            {
                "index": s.index,
                "duration_s": s.duration,
                "serialization_s": s.serialization_time,
                "propagation_s": s.propagation_time,
                "tuning_s": s.tuning_time,
                "overhead_s": s.overhead_time,
                "num_transfers": s.num_transfers,
                "striping": s.striping,
                "wavelength_demand": s.wavelength_demand,
                "spectrum_span": s.spectrum_span,
            }
            for s in report.steps
        ],
    }


def report_to_json(report: ExecutionReport, indent: int = 2) -> str:
    """JSON export of an execution report."""
    return json.dumps(report_to_dict(report), indent=indent)


def compare_timelines(reports: List[ExecutionReport]) -> str:
    """Side-by-side totals of several reports (for examples/CLI)."""
    if not reports:
        return "(no reports)"
    labels = [f"{r.schedule_name} [{r.substrate}]" for r in reports]
    name_w = max(len(l) for l in labels)
    fastest = min(r.total_time for r in reports)
    lines = []
    for label, r in sorted(zip(labels, reports),
                           key=lambda lr: lr[1].total_time):
        ratio = r.total_time / fastest if fastest else 1.0
        lines.append(f"{label:<{name_w}}  "
                     f"{units.fmt_time(r.total_time):>12}  "
                     f"{r.num_steps:>5} steps  {ratio:>6.2f}x")
    return "\n".join(lines)
