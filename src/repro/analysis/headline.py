"""The paper's headline numbers.

Abstract/§4: *"compared to all-reduce algorithms in the electrical and
optical network systems, our approach reduces communication time by
75.76% and 91.86%, respectively."*

Interpretation: the intro singles out *Ring* all-reduce, and indeed the
mean reduction vs **E-Ring** over the Fig. 2 grid lands within half a
point of 75.76% in this reproduction, while any pooling with RD
overshoots — so the primary electrical aggregate here is vs E-Ring (the
strongest electrical baseline), with the pooled E-Ring+RD number
reported alongside.  The optical number is the mean reduction vs O-Ring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .figure2 import PAPER_MODELS, PAPER_SCALES, Figure2Panel, figure2


@dataclass
class HeadlineResult:
    """Aggregated reductions over the Fig. 2 grid."""

    electrical_reduction: float          # vs E-Ring (primary)
    optical_reduction: float             # vs O-Ring
    electrical_pooled_reduction: float   # vs E-Ring + RD pooled
    per_baseline: Dict[str, float] = field(default_factory=dict)
    per_point: List[Tuple[str, int, str, float]] = field(
        default_factory=list)

    #: The paper's published values, for the record.
    PAPER_ELECTRICAL: float = 0.7576
    PAPER_OPTICAL: float = 0.9186


def headline_reductions(
        panels: Dict[str, Figure2Panel] | None = None,
        models: Sequence[str] = PAPER_MODELS,
        scales: Sequence[int] = PAPER_SCALES) -> HeadlineResult:
    """Compute the two headline aggregates (recomputes Fig. 2 if needed)."""
    if panels is None:
        panels = figure2(models=models, scales=scales)
    per_point: List[Tuple[str, int, str, float]] = []
    pools: Dict[str, List[float]] = {"e-ring": [], "rd": [], "o-ring": []}
    for model, panel in panels.items():
        wrht = panel.times["wrht"]
        for baseline in pools:
            if baseline not in panel.times:
                continue
            for n, tb, tw in zip(panel.scales, panel.times[baseline], wrht):
                red = 1.0 - tw / tb
                pools[baseline].append(red)
                per_point.append((model, n, baseline, red))
    electrical = float(np.mean(pools["e-ring"]))
    pooled = float(np.mean(pools["e-ring"] + pools["rd"]))
    optical = float(np.mean(pools["o-ring"]))
    per_baseline = {b: float(np.mean(v)) for b, v in pools.items() if v}
    return HeadlineResult(electrical_reduction=electrical,
                          optical_reduction=optical,
                          electrical_pooled_reduction=pooled,
                          per_baseline=per_baseline,
                          per_point=per_point)


def render_headline(result: HeadlineResult) -> str:
    """Paper-vs-measured summary block."""
    lines = [
        "Headline reductions (mean over the Fig. 2 grid)",
        "  vs electrical Ring all-reduce (E-Ring):  "
        f"{result.electrical_reduction:7.2%}   (paper: "
        f"{result.PAPER_ELECTRICAL:.2%})",
        "  vs optical Ring all-reduce (O-Ring):     "
        f"{result.optical_reduction:7.2%}   (paper: "
        f"{result.PAPER_OPTICAL:.2%})",
        "  vs E-Ring + RD pooled:                   "
        f"{result.electrical_pooled_reduction:7.2%}",
        "  per baseline:",
    ]
    for b, v in sorted(result.per_baseline.items()):
        lines.append(f"    {b:<8} {v:7.2%}")
    return "\n".join(lines)
