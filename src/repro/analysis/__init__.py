"""Experiment harness: Fig. 2, headline claims, tables and ablation sweeps.

Every table/figure row in ``DESIGN.md``'s experiment index maps to one
function here; the ``benchmarks/`` tree and the CLI are thin wrappers.
"""

from .ascii_plot import grouped_bar_chart, line_chart
from .figure2 import (PAPER_MODELS, PAPER_SCALES, Figure2Panel,
                      figure2, figure2_panel, panels_to_csv, render_panel)
from .headline import HeadlineResult, headline_reductions, render_headline
from .parallel import figure2_parallel, plan_grid_parallel
from .report import full_report
from .sweeps import (crossover_sweep, fault_sweep, pipelining_sweep,
                     serving_load_sweep, striping_sweep, wavelength_sweep)
from .tables import (step_count_table, render_step_count_table,
                     wavelength_requirement_table,
                     render_wavelength_requirement_table)
from .timeline import (compare_timelines, render_timeline, report_to_dict,
                       report_to_json)

__all__ = [
    "PAPER_MODELS",
    "PAPER_SCALES",
    "Figure2Panel",
    "figure2",
    "figure2_panel",
    "render_panel",
    "panels_to_csv",
    "HeadlineResult",
    "headline_reductions",
    "render_headline",
    "wavelength_sweep",
    "crossover_sweep",
    "serving_load_sweep",
    "fault_sweep",
    "striping_sweep",
    "pipelining_sweep",
    "figure2_parallel",
    "plan_grid_parallel",
    "full_report",
    "render_timeline",
    "compare_timelines",
    "report_to_dict",
    "report_to_json",
    "step_count_table",
    "render_step_count_table",
    "wavelength_requirement_table",
    "render_wavelength_requirement_table",
    "grouped_bar_chart",
    "line_chart",
]
