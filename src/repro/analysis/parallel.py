"""Process-parallel experiment driver.

The Fig. 2 grid and the ablation sweeps are embarrassingly parallel
(independent (model, scale) cells, each dominated by the planner's
candidate sweep).  This module fans cells out over worker processes —
the classic HPC recipe of parallelising at the outermost independent
loop rather than inside the numerics.

Everything submitted must be picklable, so the public entry points take
plain data (model names, scales) and rebuild systems inside the worker.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

from ..models.catalog import paper_workload
from .figure2 import Figure2Panel, PAPER_MODELS, PAPER_SCALES


def _default_workers(requested: Optional[int]) -> int:
    if requested is not None:
        return max(1, requested)
    return max(1, min(os.cpu_count() or 1, 8))


def _fig2_cell(args: Tuple[str, int]) -> Tuple[str, int, Dict[str, float]]:
    """One (model, scale) cell — executed inside a worker process."""
    from ..core.comparison import ALGORITHMS, compare_algorithms

    model, n = args
    comp = compare_algorithms(n, paper_workload(model))
    return model, n, {a: comp.time(a) for a in ALGORITHMS}


def figure2_parallel(models: Sequence[str] = PAPER_MODELS,
                     scales: Sequence[int] = PAPER_SCALES,
                     max_workers: Optional[int] = None,
                     ) -> Dict[str, Figure2Panel]:
    """The Fig. 2 grid computed with one process per cell.

    Produces the same panels as :func:`repro.analysis.figure2.figure2`
    (asserted by the test suite) with wall-clock divided by the worker
    count.
    """
    cells = [(m, n) for m in models for n in scales]
    workers = _default_workers(max_workers)
    results: Dict[Tuple[str, int], Dict[str, float]] = {}
    if workers == 1:
        for cell in cells:
            model, n, times = _fig2_cell(cell)
            results[(model, n)] = times
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for model, n, times in pool.map(_fig2_cell, cells):
                results[(model, n)] = times

    panels: Dict[str, Figure2Panel] = {}
    for model in models:
        algos = list(results[(model, scales[0])])
        panel = Figure2Panel(model=model, scales=tuple(scales),
                             times={a: [] for a in algos})
        for n in scales:
            for a in algos:
                panel.times[a].append(results[(model, n)][a])
        panels[model] = panel
    return panels


def _plan_cell(args: Tuple[int, int, float]
               ) -> Tuple[int, int, float, int, int]:
    """One planner invocation — executed inside a worker process."""
    from ..config import OpticalRingSystem, Workload
    from ..core.planner import plan_wrht

    n, w, nbytes = args
    plan = plan_wrht(OpticalRingSystem(num_nodes=n, num_wavelengths=w),
                     Workload(data_bytes=nbytes))
    return n, w, plan.predicted_time, plan.group_size, plan.num_steps


def plan_grid_parallel(node_counts: Sequence[int],
                       wavelength_budgets: Sequence[int],
                       data_bytes: float,
                       max_workers: Optional[int] = None):
    """Plan Wrht over an (N, w) grid in parallel.

    Returns rows ``(n, w, predicted_time, group_size, steps)`` in grid
    order — the building block for capacity-planning studies.
    """
    cells = [(n, w, float(data_bytes))
             for n in node_counts for w in wavelength_budgets]
    workers = _default_workers(max_workers)
    if workers == 1:
        return [_plan_cell(c) for c in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_plan_cell, cells))
