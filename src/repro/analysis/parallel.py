"""Process-parallel experiment driver.

The Fig. 2 grid and the ablation sweeps are embarrassingly parallel
(independent (model, scale) cells, each dominated by the planner's
candidate sweep).  This module fans cells out over worker processes —
the classic HPC recipe of parallelising at the outermost independent
loop rather than inside the numerics.

Everything submitted must be picklable, so the public entry points take
plain data (model names, scales, substrate names) and rebuild systems
inside the worker.  Workers resolve substrates through
:func:`repro.core.substrates.pooled_substrate`, so each process keeps
one warm substrate instance per (system, policy) — one network object,
one RWA cache — instead of rebuilding ``OpticalRingNetwork`` per cell.

With ``cache_dir`` set, workers additionally warm those pooled
substrates from a :class:`~repro.core.cache_store.CacheStore` and spill
what they solved back after each cell, so identical subproblems (RWA
steps, fluid patterns, OCS decompositions) are solved once *across*
processes and runs.  Every persisted value is a pure function of its
key, so warmed and cold runs are byte-identical (pinned by the parity
tests).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.comparison import ALGORITHMS
from ..models.catalog import paper_workload
from .figure2 import Figure2Panel, PAPER_MODELS, PAPER_SCALES


def _default_workers(requested: Optional[int]) -> int:
    if requested is not None:
        return max(1, requested)
    return max(1, min(os.cpu_count() or 1, 8))


#: The store currently attached to this process's substrate pool.
_ACTIVE_STORE = None


def _use_cache_store(cache_dir: Optional[str]):
    """Attach a store to this process's substrate pool (worker setup).

    Idempotent per directory: a worker processing many cells warms the
    pool once, not once per cell (re-warming re-reads every namespace
    from disk).  A ``None`` cache_dir *detaches* any previously
    attached store, so a cache-less run after a cached one does not
    keep reading a stale directory.
    """
    global _ACTIVE_STORE
    if cache_dir is None:
        if _ACTIVE_STORE is not None:
            from ..core.substrates import set_pool_cache_store

            set_pool_cache_store(None)
            _ACTIVE_STORE = None
        return None
    if _ACTIVE_STORE is not None \
            and _ACTIVE_STORE.path == os.fspath(cache_dir):
        return _ACTIVE_STORE
    from ..core.cache_store import CacheStore
    from ..core.substrates import set_pool_cache_store

    _ACTIVE_STORE = CacheStore(cache_dir)
    set_pool_cache_store(_ACTIVE_STORE)
    return _ACTIVE_STORE


def _spill_cache_store(store) -> None:
    if store is not None:
        from ..core.substrates import spill_pool_caches

        spill_pool_caches(store)


def _fig2_cell(args: Tuple[str, int, Tuple[str, ...], str, Optional[str]]
               ) -> Tuple[str, int, Dict[str, float]]:
    """One (model, scale) cell — executed inside a worker process."""
    from ..core.comparison import compare_algorithms

    model, n, algorithms, fidelity, cache_dir = args
    store = _use_cache_store(cache_dir)
    comp = compare_algorithms(n, paper_workload(model),
                              algorithms=algorithms, fidelity=fidelity)
    _spill_cache_store(store)
    return model, n, {a: comp.time(a) for a in algorithms}


def figure2_parallel(models: Sequence[str] = PAPER_MODELS,
                     scales: Sequence[int] = PAPER_SCALES,
                     max_workers: Optional[int] = None,
                     algorithms: Sequence[str] = ALGORITHMS,
                     fidelity: str = "analytic",
                     cache_dir: Optional[str] = None,
                     ) -> Dict[str, Figure2Panel]:
    """The Fig. 2 grid computed with one process per cell.

    Produces the same panels as :func:`repro.analysis.figure2.figure2`
    (asserted by the test suite) with wall-clock divided by the worker
    count.  The panel series are keyed by the *requested* ``algorithms``
    — never inferred from one cell's results, so a filtered or failed
    algorithm at one scale cannot skew every panel.

    ``cache_dir`` names a persistent cache-store directory: workers
    warm their substrate caches from it and spill solved subproblems
    back, so repeated grids (and the serial path, which honours the
    same argument) stop re-solving identical cells.  Panels are
    byte-identical with or without a (warm or cold) store.
    """
    algos = tuple(algorithms)
    cells = [(m, n, algos, fidelity, cache_dir)
             for m in models for n in scales]
    workers = _default_workers(max_workers)
    results: Dict[Tuple[str, int], Dict[str, float]] = {}
    if workers == 1:
        for cell in cells:
            model, n, times = _fig2_cell(cell)
            results[(model, n)] = times
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for model, n, times in pool.map(_fig2_cell, cells):
                results[(model, n)] = times

    panels: Dict[str, Figure2Panel] = {}
    for model in models:
        panel = Figure2Panel(model=model, scales=tuple(scales),
                             times={a: [] for a in algos})
        for n in scales:
            for a in algos:
                panel.times[a].append(results[(model, n)][a])
        panels[model] = panel
    return panels


def _plan_cell(args: Tuple[int, int, float]
               ) -> Tuple[int, int, float, int, int]:
    """One planner invocation — executed inside a worker process."""
    from ..config import OpticalRingSystem, Workload
    from ..core.planner import plan_wrht

    n, w, nbytes = args
    plan = plan_wrht(OpticalRingSystem(num_nodes=n, num_wavelengths=w),
                     Workload(data_bytes=nbytes))
    return n, w, plan.predicted_time, plan.group_size, plan.num_steps


def plan_grid_parallel(node_counts: Sequence[int],
                       wavelength_budgets: Sequence[int],
                       data_bytes: float,
                       max_workers: Optional[int] = None):
    """Plan Wrht over an (N, w) grid in parallel.

    Returns rows ``(n, w, predicted_time, group_size, steps)`` in grid
    order — the building block for capacity-planning studies.
    """
    cells = [(n, w, float(data_bytes))
             for n in node_counts for w in wavelength_budgets]
    workers = _default_workers(max_workers)
    if workers == 1:
        return [_plan_cell(c) for c in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_plan_cell, cells))


def _substrate_cell(args: Tuple[str, int, Tuple[float, ...], Optional[str]]
                    ) -> Tuple[str, int, List[float]]:
    """One (substrate, scale) cell: all payloads in one batch.

    The worker holds one pooled substrate per name and submits the
    whole payload column through ``execute_many``, so the network is
    built once and (on the optical ring) the RWA cache is shared across
    payloads — assignments do not depend on transfer sizes.
    """
    from ..collectives.ring_allreduce import generate_ring_allreduce
    from ..config import Workload
    from ..core.substrates import pooled_substrate

    name, n, payloads, cache_dir = args
    store = _use_cache_store(cache_dir)
    sub = pooled_substrate(name)
    sched = generate_ring_allreduce(n)
    reports = sub.execute_many(
        (sched, Workload(data_bytes=p, name="grid")) for p in payloads)
    _spill_cache_store(store)
    return name, n, [r.total_time for r in reports]


def substrate_grid_parallel(substrates: Sequence[str],
                            node_counts: Sequence[int],
                            payload_bytes: Sequence[float],
                            max_workers: Optional[int] = None,
                            cache_dir: Optional[str] = None,
                            ) -> List[Tuple[str, int, float, float]]:
    """Simulated ring all-reduce across substrates, scales and payloads.

    Fans (substrate, scale) cells over worker processes; each cell
    batch-executes every payload on one warm substrate instance.
    ``cache_dir`` (optional) names a persistent cache store the workers
    warm from and spill to.  Returns rows ``(substrate, num_nodes,
    payload_bytes, total_time)`` in grid order — the capacity-planning
    counterpart of :func:`plan_grid_parallel` for full-fidelity
    execution.
    """
    payloads = tuple(float(p) for p in payload_bytes)
    cells = [(s, n, payloads, cache_dir)
             for s in substrates for n in node_counts]
    workers = _default_workers(max_workers)
    if workers == 1:
        batches = [_substrate_cell(c) for c in cells]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            batches = list(pool.map(_substrate_cell, cells))
    rows: List[Tuple[str, int, float, float]] = []
    for name, n, times in batches:
        rows.extend((name, n, p, t) for p, t in zip(payloads, times))
    return rows
