"""Ablation sweeps (the EXT-A experiments of DESIGN.md).

* :func:`wavelength_sweep` — EXT-A1: Wrht (and O-Ring for reference)
  as the per-direction wavelength budget grows;
* :func:`crossover_sweep` — EXT-A5: payload sweep locating where Wrht
  starts beating each baseline;
* :func:`striping_sweep` — EXT-A3: isolates the WDM striping advantage
  by costing the same Wrht schedule with striping on and off, plus the
  striped-ring thought experiment;
* :func:`substrate_sweep` — EXT-S1: one pinned ring all-reduce executed
  on every registered substrate (dispatched through the registry, so
  third-party substrates show up automatically);
* :func:`hier_group_sweep` — EXT-H1: the multi-rack fabric's rack-size
  knob, against the flat O-Ring and Wrht references;
* :func:`bandwidth_sweep` — EXT-A9: the electrical substrate's
  link-rate knob, executed on *one* substrate so all cells share the
  shape-keyed compiled-structure cache (each cell only rebinds
  capacities);
* :func:`serving_load_sweep` — EXT-V1: the serving layer's offered
  load, streaming the same seeded Poisson mix through one warm shared
  substrate at increasing arrival rates and reading off throughput,
  JCT percentiles, and queue depth;
* :func:`ocs_delay_sweep` — EXT-O1: the OCS fabric's reconfiguration
  delay, executing the same schedule under the myopic per-step policy
  and the lookahead program synthesiser to show where amortisation
  starts paying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import (OpticalRingSystem, Workload, default_hierarchical,
                      default_optical, hier_group_candidates)
from ..core import cost_model
from ..core.comparison import compare_algorithms
from ..core.planner import plan_wrht
from ..core.substrates import available_substrates, pooled_substrate
from ..errors import ConfigurationError


@dataclass(frozen=True)
class WavelengthSweepRow:
    """One budget point of EXT-A1."""

    num_wavelengths: int
    wrht_time: float
    wrht_group_size: int
    wrht_steps: int
    oring_time: float


def wavelength_sweep(num_nodes: int, workload: Workload,
                     budgets: Sequence[int] = (4, 8, 16, 32, 64, 128),
                     ) -> List[WavelengthSweepRow]:
    """Wrht vs wavelength budget (O-Ring is budget-insensitive)."""
    rows = []
    for w in budgets:
        system = default_optical(num_nodes, num_wavelengths=w)
        plan = plan_wrht(system, workload)
        rows.append(WavelengthSweepRow(
            num_wavelengths=w,
            wrht_time=plan.predicted_time,
            wrht_group_size=plan.group_size,
            wrht_steps=plan.num_steps,
            oring_time=cost_model.oring_time(system, workload)))
    return rows


@dataclass(frozen=True)
class CrossoverRow:
    """One payload point of EXT-A5."""

    data_bytes: float
    times: Dict[str, float]

    def winner(self) -> str:
        """Fastest algorithm at this payload.

        Ties break alphabetically (not by dict insertion order), so the
        answer is stable across callers that assemble ``times`` in
        different orders.
        """
        return min(sorted(self.times), key=self.times.get)


def crossover_sweep(num_nodes: int,
                    payload_bytes: Sequence[float],
                    algorithms: Sequence[str] = ("e-ring", "rd", "o-ring",
                                                 "wrht"),
                    ) -> List[CrossoverRow]:
    """Sweep the payload to locate win regions (latency vs bandwidth)."""
    rows = []
    for nbytes in payload_bytes:
        wl = Workload(data_bytes=float(nbytes), name="sweep")
        comp = compare_algorithms(num_nodes, wl, algorithms=algorithms)
        rows.append(CrossoverRow(
            data_bytes=float(nbytes),
            times={a: comp.time(a) for a in algorithms}))
    return rows


@dataclass(frozen=True)
class PipeliningRow:
    """EXT-A8: one chunk-count point of the pipelined-Wrht sweep."""

    num_chunks: int
    steps: int
    time: float
    min_striping: int


def pipelining_sweep(num_nodes: int, workload: Workload,
                     chunk_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
                     group_size: int = 3,
                     num_wavelengths: int = 64) -> List[PipeliningRow]:
    """Pipelined Wrht vs chunk count (EXT-A8).

    Pipelining shrinks per-step payloads (steps = L + C − 1 of S/C each)
    but stacks concurrent levels on the ring, shrinking the striping
    factor — this sweep exposes the optimum.
    """
    from ..collectives.wrht import WrhtParameters
    from ..collectives.wrht_pipelined import generate_wrht_pipelined
    from ..core.cost_model import wrht_time_from_schedule

    system = default_optical(num_nodes, num_wavelengths=num_wavelengths)
    params = WrhtParameters(num_nodes=num_nodes, group_size=group_size,
                            num_wavelengths=num_wavelengths,
                            alltoall_threshold=group_size)
    rows = []
    for c in chunk_counts:
        sched, _ = generate_wrht_pipelined(params, c)
        detail = wrht_time_from_schedule(sched, system, workload)
        rows.append(PipeliningRow(
            num_chunks=c, steps=sched.num_steps,
            time=detail.total_time,
            min_striping=min(detail.striping)))
    return rows


@dataclass(frozen=True)
class StripingRow:
    """EXT-A3: the same configuration with/without WDM striping."""

    label: str
    time: float
    steps: int
    detail: str = ""


def striping_sweep(num_nodes: int, workload: Workload,
                   num_wavelengths: int = 64) -> List[StripingRow]:
    """Cost Wrht and Ring with striping enabled/disabled.

    Shows (a) striping is where Wrht's WDM win comes from, and (b) the
    honest extension result that a hypothetical striped ring all-reduce
    is latency-bound rather than bandwidth-bound at scale.
    """
    base = default_optical(num_nodes, num_wavelengths=num_wavelengths)
    nostripe = base.with_(allow_striping=False)
    rows: List[StripingRow] = []

    plan_s = plan_wrht(base, workload)
    rows.append(StripingRow("wrht+striping", plan_s.predicted_time,
                            plan_s.num_steps,
                            f"m={plan_s.group_size}, {plan_s.variant}"))
    plan_n = plan_wrht(nostripe, workload)
    rows.append(StripingRow("wrht-no-striping", plan_n.predicted_time,
                            plan_n.num_steps,
                            f"m={plan_n.group_size}, {plan_n.variant}"))
    rows.append(StripingRow(
        "o-ring (1 wavelength)",
        cost_model.oring_time(base, workload),
        2 * (num_nodes - 1)))
    rows.append(StripingRow(
        "ring+striping (thought experiment)",
        cost_model.ring_allreduce_time_optical(
            base, workload, striping=num_wavelengths),
        2 * (num_nodes - 1)))
    return rows


@dataclass(frozen=True)
class HierGroupRow:
    """EXT-H1: one rack-size point of the hierarchical-fabric sweep."""

    group_size: int
    num_groups: int
    steps: int
    hier_time: float
    oring_time: float
    wrht_time: float

    @property
    def speedup_vs_oring(self) -> float:
        """``T_O-Ring / T_hier`` at this rack size."""
        return self.oring_time / self.hier_time


def hier_group_sweep(num_nodes: int, workload: Workload,
                     group_sizes: Optional[Sequence[int]] = None,
                     fidelity: str = "analytic",
                     ) -> List[HierGroupRow]:
    """Hierarchical-fabric time vs rack size (EXT-H1).

    Sweeps ``group_size`` (default: every divisor of ``num_nodes``)
    over the multi-rack fabric — the two degenerate endpoints are the
    purely electrical rack (``g == N``) and the flat optical ring
    (``g == 1``) — and reports the flat O-Ring and Wrht times on a
    same-scale single optical ring for reference.  ``fidelity`` picks
    the closed-form :func:`~repro.core.cost_model.hier_rack_time`
    (``"analytic"``, pinned to simulation) or full substrate execution
    (``"simulate"``).
    """
    from ..collectives.hierarchical_ring import (
        generate_hierarchical_ring, hierarchical_ring_step_count)
    from ..core.substrates import pooled_substrate
    from ..errors import ConfigurationError as _CfgErr

    if fidelity not in ("analytic", "simulate"):
        raise _CfgErr(
            f"fidelity must be 'analytic' or 'simulate', got {fidelity!r}")
    sizes = (tuple(group_sizes) if group_sizes is not None
             else hier_group_candidates(num_nodes))
    flat = default_optical(num_nodes)
    oring = cost_model.oring_time(flat, workload)
    wrht = plan_wrht(flat, workload).predicted_time
    rows: List[HierGroupRow] = []
    for g in sizes:
        system = default_hierarchical(num_nodes, group_size=g)
        if fidelity == "simulate":
            t = pooled_substrate("hier-rack", system).execute(
                generate_hierarchical_ring(num_nodes, g),
                workload).total_time
        else:
            t = cost_model.hier_rack_time(system, workload)
        rows.append(HierGroupRow(
            group_size=g, num_groups=system.num_groups,
            steps=hierarchical_ring_step_count(num_nodes, g),
            hier_time=t, oring_time=oring, wrht_time=wrht))
    return rows


@dataclass(frozen=True)
class BandwidthRow:
    """EXT-A9: one link-rate cell of the electrical bandwidth sweep."""

    link_rate: float
    time: float
    steps: int
    compile_hits: int
    compile_misses: int


def bandwidth_sweep(num_nodes: int, workload: Workload,
                    link_rates: Optional[Sequence[float]] = None,
                    topology: str = "switch",
                    cache_dir: Optional[str] = None,
                    ) -> List[BandwidthRow]:
    """Electrical all-reduce time vs link rate (EXT-A9).

    Every cell runs the same schedule (recursive doubling where
    ``num_nodes`` is a power of two — its log2(N) *distinct* step
    patterns make compilation reuse meaningful — else ring all-reduce)
    on a single :class:`~repro.core.substrates.ElectricalSubstrate`
    instance, overriding the system per call.  Cells differ only in
    capacities, so their topologies share a shape signature and the
    whole sweep compiles each pattern's flow-batch structure exactly
    once; later cells rebind capacities onto the cached structures.
    The per-row cumulative compile counters make the reuse visible:
    misses stop growing after the first cell.

    ``cache_dir`` optionally warms/spills the substrate's caches
    through a persistent :class:`~repro.core.cache_store.CacheStore`,
    so a repeated sweep (or another process at the same shape) starts
    with zero compile misses.
    """
    from ..collectives.recursive_doubling import generate_recursive_doubling
    from ..collectives.ring_allreduce import generate_ring_allreduce
    from ..config import default_electrical

    if topology not in ("switch", "ring"):
        raise ConfigurationError(
            f"topology must be 'switch' or 'ring', got {topology!r}")
    if link_rates is None:
        from ..config import units

        link_rates = tuple(g * units.GBPS for g in (25, 50, 100, 200, 400))
    store = None
    if cache_dir is not None:
        from ..core.cache_store import CacheStore

        store = CacheStore(cache_dir)
    if num_nodes >= 2 and num_nodes & (num_nodes - 1) == 0:
        sched = generate_recursive_doubling(num_nodes)
    else:
        sched = generate_ring_allreduce(num_nodes)
    # Pooled (like substrate_sweep) so repeats reuse warm compiles and
    # cache_stats() sees this sweep; one instance across all cells is
    # what makes the cross-cell structure sharing happen at all.
    sub = pooled_substrate(f"electrical-{topology}")
    if store is not None:
        sub.warm_from(store)
    base = default_electrical(num_nodes).with_(topology=topology)
    rows: List[BandwidthRow] = []
    try:
        for rate in link_rates:
            rep = sub.execute(sched, workload,
                              system=base.with_(link_rate=float(rate)))
            cstats = sub.compile_cache_info()
            rows.append(BandwidthRow(
                link_rate=float(rate), time=rep.total_time,
                steps=rep.num_steps,
                compile_hits=cstats.hits, compile_misses=cstats.misses))
    finally:
        if store is not None:
            sub.spill_to(store)
    return rows


@dataclass(frozen=True)
class SubstrateRow:
    """EXT-S1: one substrate's execution of the pinned schedule."""

    substrate: str
    time: float
    steps: int
    kind: str
    note: str = ""


def substrate_sweep(num_nodes: int, workload: Workload,
                    substrates: Optional[Sequence[str]] = None,
                    cache_dir: Optional[str] = None,
                    ) -> List[SubstrateRow]:
    """Execute one ring all-reduce on every registered substrate.

    The apples-to-apples fabric comparison the registry enables: the
    *same* schedule, each substrate's own default system at
    ``num_nodes``.  Substrates that cannot host the schedule (e.g. the
    torus with a prime node count) are reported with an empty time and
    the configuration error as ``note`` rather than aborting the sweep.

    ``cache_dir`` (optional) names a persistent
    :class:`~repro.core.cache_store.CacheStore` directory: each
    substrate warms its memoization caches (RWA, OCS decomposition,
    fluid patterns) from it before executing and spills them back
    after, so repeated sweeps skip already-solved subproblems.  Results
    are identical either way.
    """
    from ..collectives.ring_allreduce import generate_ring_allreduce

    store = None
    if cache_dir is not None:
        from ..core.cache_store import CacheStore

        store = CacheStore(cache_dir)
    names = (tuple(substrates) if substrates is not None
             else available_substrates())
    sched = generate_ring_allreduce(num_nodes)
    rows: List[SubstrateRow] = []
    for name in names:
        # Pooled so repeated sweeps reuse warm instances and the
        # registry's cache_stats() aggregation sees this sweep's work.
        sub = pooled_substrate(name)
        if store is not None:
            sub.warm_from(store)
        info = sub.describe()
        try:
            rep = sub.execute(sched, workload)
        except ConfigurationError as exc:
            rows.append(SubstrateRow(substrate=name, time=float("nan"),
                                     steps=0, kind=info.kind,
                                     note=str(exc)))
            continue
        finally:
            if store is not None:
                sub.spill_to(store)
        rows.append(SubstrateRow(substrate=name, time=rep.total_time,
                                 steps=rep.num_steps, kind=info.kind))
    return rows


@dataclass(frozen=True)
class ServingLoadRow:
    """EXT-V1: one offered-load point of the serving sweep."""

    arrival_rate: float
    jobs: int
    steps: int
    makespan: float
    throughput_jobs: float
    throughput_steps: float
    jct_mean: float
    jct_p50: float
    jct_p99: float
    max_queue_depth: int
    mean_queue_depth: float
    algorithm_mix: Dict[str, int] = field(default_factory=dict)


def serving_load_sweep(capacity: int = 32,
                       num_jobs: int = 50,
                       arrival_rates: Sequence[float] = (5.0, 20.0, 80.0),
                       substrate_name: str = "electrical-ring",
                       policy: str = "fifo",
                       placement: str = "contiguous",
                       seed: int = 0,
                       ) -> List[ServingLoadRow]:
    """Serving metrics vs offered load (EXT-V1).

    Each cell streams the *same* ``num_jobs``-job seeded mix (only the
    inter-arrival scale changes with ``arrival_rate``) through one
    engine per cell, all sharing the pooled warm substrate — so the
    sweep doubles as a demonstration that warm schedule/profile caches
    make repeated traffic cheap.  As load grows, throughput saturates
    at fabric capacity and queueing pushes the JCT tail (p99) out.
    """
    from ..serving import ServingEngine, poisson_traffic

    rows: List[ServingLoadRow] = []
    for rate in arrival_rates:
        jobs = poisson_traffic(num_jobs=num_jobs, arrival_rate=float(rate),
                               seed=seed,
                               node_choices=(4, 8, min(16, capacity)))
        engine = ServingEngine(substrate_name=substrate_name,
                               capacity=capacity, policy=policy,
                               placement=placement)
        report = engine.run(jobs)
        rows.append(ServingLoadRow(
            arrival_rate=float(rate),
            jobs=report.num_jobs,
            steps=report.total_steps,
            makespan=report.makespan,
            throughput_jobs=report.throughput_jobs,
            throughput_steps=report.throughput_steps,
            jct_mean=report.jct(),
            jct_p50=report.jct(50),
            jct_p99=report.jct(99),
            max_queue_depth=report.max_queue_depth,
            mean_queue_depth=report.mean_queue_depth,
            algorithm_mix=dict(report.algorithm_mix)))
    return rows


@dataclass(frozen=True)
class FaultSweepRow:
    """EXT-F1: one fault-rate point of the degraded-serving sweep."""

    fault_rate: float
    jobs: int
    failed_jobs: int
    preemptions: int
    retries: int
    makespan: float
    throughput_jobs: float
    jct_mean: float
    jct_p99: float
    availability: float

    @property
    def goodput_fraction(self) -> float:
        """Completed jobs over submitted jobs."""
        total = self.jobs + self.failed_jobs
        return self.jobs / total if total else 1.0


def fault_sweep(capacity: int = 32,
                num_jobs: int = 50,
                arrival_rate: float = 20.0,
                fault_rates: Sequence[float] = (0.0, 2.0, 8.0, 32.0),
                mean_repair: float = 0.05,
                substrate_name: str = "electrical-ring",
                policy: str = "fifo",
                placement: str = "contiguous",
                seed: int = 0,
                fault_seed: int = 0,
                max_retries: int = 3,
                ) -> List[FaultSweepRow]:
    """Serving metrics vs fault rate (EXT-F1).

    Every cell streams the *same* seeded job mix; only the fault plan
    changes (rate split evenly between link cuts and node crashes over
    a horizon sized to the fault-free makespan).  The ``0.0`` row is
    the fault-free reference — by the zero-event passthrough guarantee
    it is bit-for-bit the plain ``run(jobs)`` result — and the
    availability/JCT/goodput columns show graceful degradation as the
    fabric gets sicker, not a cliff.
    """
    from ..faults import FaultPlan
    from ..serving import RetryPolicy, ServingEngine, poisson_traffic

    jobs = poisson_traffic(num_jobs=num_jobs, arrival_rate=arrival_rate,
                           seed=seed,
                           node_choices=(4, 8, min(16, capacity)))
    # Horizon: the fault-free makespan, so every cell's plan spans the
    # whole stream (measured once, on its own engine).
    ref = ServingEngine(substrate_name=substrate_name, capacity=capacity,
                        policy=policy, placement=placement).run(jobs)
    horizon = max(ref.makespan, 1e-6)
    rows: List[FaultSweepRow] = []
    for rate in fault_rates:
        plan = (FaultPlan.none() if rate <= 0 else FaultPlan.poisson(
            duration=horizon, num_nodes=capacity, seed=fault_seed,
            link_rate=float(rate) / 2, node_rate=float(rate) / 2,
            mean_repair=mean_repair))
        engine = ServingEngine(substrate_name=substrate_name,
                               capacity=capacity, policy=policy,
                               placement=placement)
        report = engine.run(jobs, faults=plan,
                            retry=RetryPolicy(max_retries=max_retries))
        rows.append(FaultSweepRow(
            fault_rate=float(rate),
            jobs=report.num_jobs,
            failed_jobs=len(report.failed_jobs),
            preemptions=report.preemptions,
            retries=report.retries,
            makespan=report.makespan,
            throughput_jobs=report.throughput_jobs,
            jct_mean=report.jct(),
            jct_p99=report.jct(99),
            availability=report.availability))
    return rows


@dataclass(frozen=True)
class OcsDelayRow:
    """EXT-O1: one reconfiguration-delay point, greedy vs lookahead."""

    delay_s: float
    greedy_time: float
    lookahead_time: float
    reconfigs_saved: int

    @property
    def speedup(self) -> float:
        if self.lookahead_time <= 0:
            return 1.0
        return self.greedy_time / self.lookahead_time


def ocs_delay_sweep(num_nodes: int, workload: Workload,
                    delays: Optional[Sequence[float]] = None,
                    ports_per_node: int = 4) -> List[OcsDelayRow]:
    """EXT-O1: the lookahead planner's payoff as tuning gets slower.

    One recursive-doubling schedule on the OCS fabric, executed twice
    per reconfiguration delay: the myopic per-step policy and the
    whole-schedule DP (``lookahead=True``).  The dominance guarantee
    pins ``lookahead_time <= greedy_time`` at every cell; the sweep
    shows *where* the gap opens — at ``delay=0`` reconfiguring is free
    and both policies re-match every step (ratio 1.0), while at large
    delays the DP installs port-feasible unions of consecutive
    matchings and serves several steps per paid delay.

    ``ports_per_node`` defaults to 4 (not the fabric's stock 2) so
    unions of consecutive matchings are actually port-feasible; fresh
    substrate instances per cell keep the per-run
    ``lookahead_reconfigs_saved`` counter exact.
    """
    from ..collectives.recursive_doubling import generate_recursive_doubling
    from ..config import default_ocs
    from ..core.substrates.reconfigurable import OCSReconfigurableSubstrate

    if delays is None:
        delays = (0.0, 1e-5, 1e-4, 1e-3, 1e-2)
    sched = generate_recursive_doubling(num_nodes)
    rows: List[OcsDelayRow] = []
    for delay in delays:
        system = default_ocs(num_nodes).with_(
            reconfiguration_delay=float(delay),
            ports_per_node=ports_per_node)
        greedy = OCSReconfigurableSubstrate(system).execute(
            sched, workload)
        sub = OCSReconfigurableSubstrate(system, lookahead=True)
        look = sub.execute(sched, workload)
        saved = dict(sub.describe().parameters)[
            "lookahead_reconfigs_saved"]
        rows.append(OcsDelayRow(delay_s=float(delay),
                                greedy_time=greedy.total_time,
                                lookahead_time=look.total_time,
                                reconfigs_saved=int(saved)))
    return rows


@dataclass(frozen=True)
class StrategySweepRow:
    """EXT-T1: one parallelization strategy across fabric shapes."""

    strategy: str
    comm_bytes: float
    hier_times: Dict[int, Optional[float]]
    ocs_time: Optional[float]
    ocs_algorithm: str
    ocs_policy: str

    @property
    def best_hier_time(self) -> Optional[float]:
        """Fastest feasible rack-size cell (None if none is)."""
        feasible = [t for t in self.hier_times.values() if t is not None]
        return min(feasible) if feasible else None


def strategy_sweep(num_nodes: int, model: str = "alexnet",
                   strategies: Optional[Sequence] = None,
                   rack_sizes: Optional[Sequence[int]] = None,
                   fidelity: str = "hybrid", top_k: int = 2,
                   **lower_kwargs) -> List[StrategySweepRow]:
    """EXT-T1: the strategy × rack-size co-planning grid.

    Each row is one parallelization strategy; its ``hier_times`` map
    rack size → best-leader closed-form time on the hierarchical
    fabric (``None`` where the strategy's groups cannot be rack-aligned
    — the infeasibility the co-planner routes around), and
    ``ocs_time`` is the best simulated (algorithm, policy) pair on the
    reconfigurable OCS.  The per-strategy spread is the whole point of
    the sweep: strategies whose groups match the fabric hierarchy win
    racks, strided strategies need the OCS to reshape around them.
    """
    from ..core.topoplan import strategy_plan_table
    from ..models.catalog import get_model
    from ..models.strategies import enumerate_strategies

    if strategies is None:
        strategies = enumerate_strategies(num_nodes)
    if rack_sizes is None:
        rack_sizes = hier_group_candidates(num_nodes)
    model_obj = get_model(model)
    rows: List[StrategySweepRow] = []
    for strat in strategies:
        comm = strat.lower(model_obj, **lower_kwargs).total_bytes
        plans = strategy_plan_table(
            num_nodes, model, strategies=[strat], rack_sizes=rack_sizes,
            fidelity=fidelity, top_k=top_k, **lower_kwargs)
        hier_times: Dict[int, Optional[float]] = {}
        for g in rack_sizes:
            cells = [p.predicted_time for p in plans
                     if p.fabric == "hier-rack" and p.group_size == g]
            hier_times[int(g)] = min(cells) if cells else None
        ocs = [p for p in plans if p.fabric == "ocs-reconfig"]
        if ocs:
            best = min(ocs, key=lambda p: (p.predicted_time, p.num_steps,
                                           p.policy, p.algorithm))
            rows.append(StrategySweepRow(
                strategy=strat.name, comm_bytes=comm,
                hier_times=hier_times, ocs_time=best.predicted_time,
                ocs_algorithm=best.algorithm, ocs_policy=best.policy))
        else:
            rows.append(StrategySweepRow(
                strategy=strat.name, comm_bytes=comm,
                hier_times=hier_times, ocs_time=None,
                ocs_algorithm="-", ocs_policy="-"))
    return rows
