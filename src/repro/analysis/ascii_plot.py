"""Terminal plotting: grouped bars (Fig. 2 style) and line charts.

matplotlib is not available in the reproduction environment, so the
harness renders figures as unicode bar/line charts plus CSV — the series
data is what matters for comparing shapes against the paper.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_BAR = "█"
_HALF = "▌"


def grouped_bar_chart(categories: Sequence,
                      series: Dict[str, Sequence[float]],
                      width: int = 40,
                      value_fmt: str = "{:.2f}",
                      title: str = "") -> str:
    """Horizontal grouped bar chart.

    ``categories`` label the groups (e.g. node counts); ``series`` maps a
    series name (algorithm) to one value per category.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    values = [v for vs in series.values() for v in vs]
    if not values:
        return title
    peak = max(values) or 1.0
    name_w = max(len(str(s)) for s in series)
    for ci, cat in enumerate(categories):
        lines.append(f"{cat}:")
        for name, vals in series.items():
            v = vals[ci]
            filled = v / peak * width
            bar = _BAR * int(filled)
            if filled - int(filled) >= 0.5:
                bar += _HALF
            lines.append(f"  {str(name):<{name_w}} |{bar:<{width}}| "
                         + value_fmt.format(v))
    return "\n".join(lines)


def line_chart(xs: Sequence[float], series: Dict[str, Sequence[float]],
               height: int = 12, width: int = 60,
               title: str = "", logy: bool = False) -> str:
    """Coarse multi-series scatter/line chart on a character grid."""
    import math

    lines: List[str] = []
    if title:
        lines.append(title)
    pts = [v for vs in series.values() for v in vs if v > 0 or not logy]
    if not pts or len(xs) < 2:
        return title

    def ty(v: float) -> float:
        return math.log10(v) if logy else v

    ys = [ty(v) for v in pts]
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for si, (name, vals) in enumerate(series.items()):
        mark = markers[si % len(markers)]
        for xi, v in enumerate(vals):
            if logy and v <= 0:
                continue
            col = int(xi / (len(xs) - 1) * (width - 1))
            row = int((ty(v) - lo) / span * (height - 1))
            grid[height - 1 - row][col] = mark
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {xs[0]} .. {xs[-1]}   "
                 + "  ".join(f"{markers[i % len(markers)]}={n}"
                             for i, n in enumerate(series)))
    return "\n".join(lines)


def simple_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Monospace table with auto-sized columns."""
    str_rows = [[str(c) for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    out: List[str] = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)
