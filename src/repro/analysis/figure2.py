"""Figure 2: communication time of the four algorithms across scales.

The paper's only data figure — four panels (AlexNet, VGG16, ResNet50,
GoogLeNet), each showing "normalized time" (milliseconds here) of
E-Ring, RD, O-Ring and Wrht at N ∈ {128, 256, 512, 1024}.

:func:`figure2` regenerates every panel; :func:`render_panel` draws the
grouped bars; :func:`panels_to_csv` emits the raw series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import ElectricalSystem, OpticalRingSystem, Workload, \
    default_electrical, default_optical
from ..core.comparison import ALGORITHMS, ComparisonResult, \
    compare_algorithms
from ..models.catalog import PAPER_PARAM_COUNTS, paper_workload
from .ascii_plot import grouped_bar_chart

#: The paper's cluster scales (x axis of every panel).
PAPER_SCALES: Tuple[int, ...] = (128, 256, 512, 1024)
#: The paper's model order (panels a-d).
PAPER_MODELS: Tuple[str, ...] = ("alexnet", "vgg16", "resnet50",
                                 "googlenet")


@dataclass
class Figure2Panel:
    """One panel: per-algorithm times (seconds) across scales."""

    model: str
    scales: Tuple[int, ...]
    times: Dict[str, List[float]] = field(default_factory=dict)
    comparisons: List[ComparisonResult] = field(default_factory=list)

    def normalized(self, unit: float = 1e-3) -> Dict[str, List[float]]:
        """Times in ``unit`` (default: ms — the figure's y values)."""
        return {a: [t / unit for t in ts] for a, ts in self.times.items()}

    def winner_at(self, scale: int) -> str:
        """Fastest algorithm at ``scale``."""
        i = self.scales.index(scale)
        return min(self.times, key=lambda a: self.times[a][i])


def figure2_panel(
    model: str,
    scales: Sequence[int] = PAPER_SCALES,
    algorithms: Sequence[str] = ALGORITHMS,
    optical_factory: Callable[[int], OpticalRingSystem] = default_optical,
    electrical_factory: Callable[[int], ElectricalSystem] =
        default_electrical,
    fidelity: str = "analytic",
    workload: Optional[Workload] = None,
) -> Figure2Panel:
    """Compute one Fig. 2 panel for ``model``."""
    wl = workload if workload is not None else paper_workload(model)
    panel = Figure2Panel(model=model, scales=tuple(scales),
                         times={a: [] for a in algorithms})
    for n in scales:
        comp = compare_algorithms(
            n, wl, optical=optical_factory(n),
            electrical=electrical_factory(n), algorithms=algorithms,
            fidelity=fidelity)
        panel.comparisons.append(comp)
        for a in algorithms:
            panel.times[a].append(comp.time(a))
    return panel


def figure2(models: Sequence[str] = PAPER_MODELS,
            scales: Sequence[int] = PAPER_SCALES,
            fidelity: str = "analytic",
            **kwargs) -> Dict[str, Figure2Panel]:
    """All four panels of Fig. 2 (keyed by model name)."""
    return {m: figure2_panel(m, scales=scales, fidelity=fidelity, **kwargs)
            for m in models}


def render_panel(panel: Figure2Panel) -> str:
    """Grouped-bar rendering of one panel (y in ms, like the paper)."""
    series = panel.normalized()
    label = {"e-ring": "E-Ring", "rd": "RD", "o-ring": "O-Ring",
             "wrht": "WRHT"}
    named = {label.get(a, a): v for a, v in series.items()}
    params = PAPER_PARAM_COUNTS.get(panel.model)
    suffix = f" ({params / 1e6:.4g}M parameters)" if params else ""
    return grouped_bar_chart(
        categories=[f"N={n}" for n in panel.scales], series=named,
        title=f"Figure 2 — {panel.model}{suffix}: normalized "
              f"communication time [ms]")


def panels_to_csv(panels: Dict[str, Figure2Panel]) -> str:
    """CSV of every (model, algorithm, scale) time in milliseconds."""
    lines = ["model,algorithm,num_nodes,time_ms"]
    for model, panel in panels.items():
        for algo, times in panel.times.items():
            for n, t in zip(panel.scales, times):
                lines.append(f"{model},{algo},{n},{t * 1e3:.6f}")
    return "\n".join(lines)
