"""Experiment report writer.

Regenerates the full paper-vs-measured record (the content of
``EXPERIMENTS.md``'s data sections) from live runs, so the repository's
claims can be refreshed with one command::

    python -m repro report > results/report.md

Sections: Figure 2 (four panels as markdown tables), the headline
aggregates, and the §2 step-count table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.comparison import ALGORITHMS
from .figure2 import (PAPER_MODELS, PAPER_SCALES, Figure2Panel, figure2)
from .headline import HeadlineResult, headline_reductions
from .tables import step_count_table

_ALGO_LABEL = {"e-ring": "E-Ring", "rd": "RD", "o-ring": "O-Ring",
               "wrht": "WRHT"}


def _markdown_table(headers: Sequence[str],
                    rows: Sequence[Sequence]) -> str:
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)


def figure2_markdown(panels: Dict[str, Figure2Panel]) -> str:
    """Fig. 2 panels as markdown tables (times in ms)."""
    blocks: List[str] = []
    for model, panel in panels.items():
        headers = ["N"] + [_ALGO_LABEL.get(a, a) for a in panel.times]
        rows = []
        for i, n in enumerate(panel.scales):
            rows.append([n] + [f"{panel.times[a][i] * 1e3:.2f}"
                               for a in panel.times])
        blocks.append(f"### {model}\n\n"
                      + _markdown_table(headers, rows))
    return "\n\n".join(blocks)


def headline_markdown(result: HeadlineResult) -> str:
    """Headline aggregates as a markdown table."""
    rows = [
        ("reduction vs electrical Ring (E-Ring)",
         f"{result.PAPER_ELECTRICAL:.2%}",
         f"{result.electrical_reduction:.2%}"),
        ("reduction vs optical Ring (O-Ring)",
         f"{result.PAPER_OPTICAL:.2%}",
         f"{result.optical_reduction:.2%}"),
        ("reduction vs E-Ring + RD pooled", "—",
         f"{result.electrical_pooled_reduction:.2%}"),
    ]
    return _markdown_table(["aggregate", "paper", "measured"], rows)


def steps_markdown(scales: Sequence[int] = PAPER_SCALES,
                   group_size: int = 3) -> str:
    """§2 step-count table as markdown."""
    rows = step_count_table(scales=scales, group_size=group_size)
    return _markdown_table(
        ["N", "Ring", "RD", "HD", "Tree", f"Wrht(m={group_size})",
         "paper bound"],
        [(r.num_nodes, r.ring, r.recursive_doubling, r.halving_doubling,
          r.binomial_tree, r.wrht, r.wrht_paper_bound) for r in rows])


def full_report(models: Sequence[str] = PAPER_MODELS,
                scales: Sequence[int] = PAPER_SCALES) -> str:
    """The complete regenerated paper-vs-measured report (markdown)."""
    panels = figure2(models=models, scales=scales)
    headline = headline_reductions(panels=panels)
    parts = [
        "# Wrht reproduction — regenerated experiment report",
        "## Figure 2 (normalized communication time, ms)",
        figure2_markdown(panels),
        "## Headline claims",
        headline_markdown(headline),
        "## Step counts (§2)",
        steps_markdown(scales=scales),
    ]
    return "\n\n".join(parts) + "\n"
