"""Step-count and wavelength-requirement tables (paper §2 formulas).

The poster has no numbered tables, but §2 makes quantitative claims that
deserve their own artifacts:

* total steps = ``2⌈log_m N⌉`` or ``2⌈log_m N⌉ − 1``;
* tree-step wavelength requirement = ``⌊m/2⌋``;
* last-step survivors ``m* = ⌈N/m^{⌈log_m N⌉−1}⌉`` needing ``⌈m*²/8⌉``
  wavelengths for the all-to-all.

Each table cross-checks the closed form against the *generated*
schedule, so the rendered artifact is simultaneously a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..collectives.alltoall_wdm import alltoall_wavelength_requirement
from ..collectives.binomial_tree import binomial_tree_step_count
from ..collectives.halving_doubling import halving_doubling_step_count
from ..collectives.recursive_doubling import recursive_doubling_step_count
from ..collectives.ring_allreduce import ring_step_count
from ..collectives.wrht import (WrhtParameters, generate_wrht,
                                wrht_last_level_survivors,
                                wrht_theoretical_steps, wrht_tree_levels)
from ..topology.ring import RingTopology
from ..collectives.analysis import peak_wavelength_demand
from .ascii_plot import simple_table


@dataclass(frozen=True)
class StepCountRow:
    """Step counts of every algorithm at one scale."""

    num_nodes: int
    ring: int
    recursive_doubling: int
    halving_doubling: int
    binomial_tree: int
    wrht: int
    wrht_paper_bound: int


def step_count_table(scales: Sequence[int] = (128, 256, 512, 1024),
                     group_size: int = 3,
                     num_wavelengths: int = 64) -> List[StepCountRow]:
    """Steps per algorithm per scale; Wrht generated + paper bound."""
    rows = []
    for n in scales:
        sched, _ = generate_wrht(WrhtParameters(
            num_nodes=n, group_size=group_size,
            num_wavelengths=num_wavelengths,
            alltoall_threshold=group_size))
        rows.append(StepCountRow(
            num_nodes=n,
            ring=ring_step_count(n),
            recursive_doubling=recursive_doubling_step_count(n),
            halving_doubling=halving_doubling_step_count(n),
            binomial_tree=binomial_tree_step_count(n),
            wrht=sched.num_steps,
            wrht_paper_bound=wrht_theoretical_steps(
                n, group_size, num_wavelengths,
                alltoall_threshold=group_size)))
    return rows


def render_step_count_table(rows: List[StepCountRow],
                            group_size: int = 3) -> str:
    """Monospace rendering of :func:`step_count_table`."""
    return simple_table(
        ["N", "Ring 2(N-1)", "RD", "HD", "Tree", f"Wrht(m={group_size})",
         "paper 2⌈log_m N⌉-1"],
        [(r.num_nodes, r.ring, r.recursive_doubling, r.halving_doubling,
          r.binomial_tree, r.wrht, r.wrht_paper_bound) for r in rows],
        title="Communication steps per algorithm")


@dataclass(frozen=True)
class WavelengthRow:
    """Wavelength accounting for one (N, m) configuration."""

    num_nodes: int
    group_size: int
    tree_requirement: int        # ⌊m/2⌋ (paper)
    tree_demand_generated: int   # measured on the generated schedule
    survivors: int               # m*
    alltoall_requirement: int    # ⌈m*²/8⌉ (paper)
    peak_demand_generated: int   # worst step of the full schedule


def wavelength_requirement_table(
        configs: Sequence[Tuple[int, int]] = ((128, 3), (128, 9), (256, 5),
                                              (512, 3), (1024, 3),
                                              (1024, 17)),
        num_wavelengths: int = 64) -> List[WavelengthRow]:
    """Paper formulas vs demand measured on generated schedules."""
    rows = []
    for n, m in configs:
        params = WrhtParameters(num_nodes=n, group_size=m,
                                num_wavelengths=num_wavelengths,
                                alltoall_threshold=m)
        sched, info = generate_wrht(params)
        ring = RingTopology(n, capacity=1.0, bidirectional=True)
        from ..collectives.analysis import schedule_wavelength_demand
        demands = schedule_wavelength_demand(ring, sched)
        tree_demand = max(
            (d for i, d in enumerate(demands)
             if i < info.num_tree_levels), default=0)
        survivors = wrht_last_level_survivors(n, m)
        rows.append(WavelengthRow(
            num_nodes=n, group_size=m,
            tree_requirement=m // 2,
            tree_demand_generated=tree_demand,
            survivors=survivors,
            alltoall_requirement=alltoall_wavelength_requirement(survivors),
            peak_demand_generated=peak_wavelength_demand(ring, sched)))
    return rows


def render_wavelength_requirement_table(rows: List[WavelengthRow]) -> str:
    """Monospace rendering of :func:`wavelength_requirement_table`."""
    return simple_table(
        ["N", "m", "⌊m/2⌋", "tree demand", "m*", "⌈m*²/8⌉",
         "peak demand"],
        [(r.num_nodes, r.group_size, r.tree_requirement,
          r.tree_demand_generated, r.survivors, r.alltoall_requirement,
          r.peak_demand_generated) for r in rows],
        title="Wavelength requirements: paper formula vs generated schedule")
