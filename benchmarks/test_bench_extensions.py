"""EXT-A7..A10 — extension experiments beyond the poster's figure.

* A7 energy — joules per all-reduce on the optical rack;
* A8 pipelining — chunked pipelined Wrht (the natural next optimisation);
* A9 hierarchical ring — the strongest non-WDM tree-ish baseline;
* A10 electrical congestion — RD under fat-tree oversubscription,
  exercising the fluid max-min model beyond single-bottleneck cases.
"""

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.analysis.sweeps import pipelining_sweep
from repro.collectives import (WrhtParameters, generate_hierarchical_ring,
                               generate_ring_allreduce, generate_wrht)
from repro.collectives.hierarchical_ring import hierarchical_ring_step_count
from repro.config import OpticalRingSystem, Workload
from repro.core.cost_model import wrht_time_from_schedule
from repro.core.executor import execute_on_optical_ring
from repro.models.catalog import paper_workload
from repro.optical.power import energy_of_execution
from repro.simulation.fluid import FluidNetworkSimulator
from repro.topology import FatTree


def test_energy_per_allreduce(once):
    """EXT-A7: time and energy of each optical schedule (N=128, VGG16)."""

    def run():
        n = 128
        system = OpticalRingSystem(num_nodes=n)
        wl = paper_workload("vgg16")
        rows = []
        oring = generate_ring_allreduce(n)
        rep = execute_on_optical_ring(oring, system, wl, striping="off")
        rows.append(("o-ring", rep.total_time,
                     energy_of_execution(oring, rep, wl)))
        wrht, _ = generate_wrht(WrhtParameters(
            num_nodes=n, group_size=3, num_wavelengths=64,
            alltoall_threshold=3))
        rep = execute_on_optical_ring(wrht, system, wl)
        rows.append(("wrht", rep.total_time,
                     energy_of_execution(wrht, rep, wl)))
        return rows

    rows = once(run)
    print()
    print(simple_table(
        ["schedule", "time", "energy [J]", "mean power [W]"],
        [(name, units.fmt_time(t), f"{e:.3f}", f"{e / t:.1f}")
         for name, t, e in rows],
        title="EXT-A7: energy per all-reduce (VGG16, N=128)"))
    t = {name: (time, e) for name, time, e in rows}
    # Wrht: much faster, comparable energy, higher instantaneous power.
    assert t["wrht"][0] * 5 < t["o-ring"][0]
    assert t["wrht"][1] < 2.5 * t["o-ring"][1]


def test_pipelined_wrht_sweep(once):
    """EXT-A8: chunk-count sweep of pipelined Wrht (N=256, VGG16)."""

    def run():
        return pipelining_sweep(256, paper_workload("vgg16"),
                                chunk_counts=(1, 2, 4, 8, 16, 32))

    rows = once(run)
    print()
    print(simple_table(
        ["chunks", "steps", "min striping", "time"],
        [(r.num_chunks, r.steps, r.min_striping, units.fmt_time(r.time))
         for r in rows],
        title="EXT-A8: pipelined Wrht (VGG16, N=256, m=3, w=64)"))
    base = rows[0].time
    best = min(r.time for r in rows)
    print(f"best pipelining gain: {base / best:.2f}x at "
          f"C={min(rows, key=lambda r: r.time).num_chunks}")
    # pipelining must never help by magic (>L x) nor hurt catastrophically
    assert best <= base * (1 + 1e-9)
    assert max(r.time for r in rows) < base * 4


def test_hierarchical_ring_baseline(once):
    """EXT-A9: hierarchical ring vs O-Ring vs Wrht on the optical rack."""

    def run():
        n = 256
        system = OpticalRingSystem(num_nodes=n)
        wl = paper_workload("resnet50")
        out = {}
        for g in (4, 16, 64):
            sched = generate_hierarchical_ring(n, g)
            detail = wrht_time_from_schedule(
                sched, system.with_(allow_striping=False), wl)
            out[f"hier-ring g={g}"] = (detail.total_time,
                                       sched.num_steps)
        oring = generate_ring_allreduce(n)
        rep = execute_on_optical_ring(oring, system, wl, striping="off")
        out["o-ring"] = (rep.total_time, oring.num_steps)
        wrht, _ = generate_wrht(WrhtParameters(
            num_nodes=n, group_size=3, num_wavelengths=64,
            alltoall_threshold=3))
        repw = execute_on_optical_ring(wrht, system, wl)
        out["wrht"] = (repw.total_time, wrht.num_steps)
        return out

    out = once(run)
    print()
    print(simple_table(
        ["algorithm", "steps", "time"],
        [(k, s, units.fmt_time(t)) for k, (t, s) in out.items()],
        title="EXT-A9: hierarchy without WDM-awareness "
              "(ResNet50, N=256, 1 wavelength/flow)"))
    # fewer steps than the flat ring...
    assert hierarchical_ring_step_count(256, 16) < 2 * 255
    # ...but without striping its full-vector local phases keep it far
    # from Wrht: tree-ness alone is not the win, WDM exploitation is.
    wrht_t = out["wrht"][0]
    for k, (t, _) in out.items():
        if k.startswith("hier"):
            assert t > 3 * wrht_t


def test_fat_tree_oversubscription(once):
    """EXT-A10: one RD exchange step under fat-tree oversubscription."""

    def run():
        rows = []
        n, per_edge = 64, 8
        size = 100 * units.MB
        # rank i exchanges with i XOR 32: all traffic crosses the core.
        pairs = [(i, i ^ 32, size) for i in range(n)]
        for ovs in (1.0, 2.0, 4.0, 8.0):
            ft = FatTree(n, 100 * units.GBPS, hosts_per_edge=per_edge,
                         oversubscription=ovs)
            sim = FluidNetworkSimulator(ft)
            rows.append((ovs, sim.step_time(pairs)))
        return rows

    rows = once(run)
    print()
    print(simple_table(
        ["oversubscription", "RD exchange step"],
        [(f"{o:.0f}:1", units.fmt_time(t)) for o, t in rows],
        title="EXT-A10: cross-edge RD step on an oversubscribed "
              "fat-tree (N=64)"))
    base = rows[0][1]
    for ovs, t in rows[1:]:
        # congestion scales the step by exactly the oversubscription
        assert t / base == __import__("pytest").approx(ovs, rel=1e-6)
