#!/usr/bin/env python3
"""Gate the perf micro-benchmarks against their committed baselines.

Usage::

    python benchmarks/check_bench_regression.py \
        CURRENT.json BASELINE.json [CURRENT2.json BASELINE2.json ...] \
        [--summary OUT.json]

Compares the *speedup ratios* (engine vs the in-tree frozen reference
implementation, measured on the same host in the same run), which makes
the gate machine-independent: CI hosts are slower than dev laptops, but
the engine and the reference slow down together.  The job fails when
any gated section's speedup drops below half of the committed
baseline's (i.e. a >2x relative regression).

Every gated section is always checked — a bad or missing entry is
recorded as a failure and the scan continues, so one CI run reports the
complete set of regressions side by side instead of the first one.
``--summary`` additionally writes one combined machine-readable JSON
(all sections from all CURRENT files plus the per-section verdicts),
the artifact CI uploads.
"""

from __future__ import annotations

import json
import sys

#: A section regresses when its speedup falls below baseline / FACTOR.
FACTOR = 2.0

#: Sections that must be present in their baseline file and are gated.
GATED_SECTIONS = ("solver_micro_cold", "step_cache_hit",
                  "sweep_cell_end_to_end", "solver_warm_start",
                  "sparse_large_batch", "schedule_fused",
                  "hier_rack_warm_reuse", "sweep_shared_compile",
                  "solver_warm_admission", "rwa_incremental_step",
                  "serving_warm_throughput", "fault_repair_vs_resolve",
                  "ocs_lookahead_vs_greedy", "ocs_delta_decompose",
                  "coplan_vs_best_fixed")


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def _check_pair(current, baseline, rows, failures):
    """Gate one (CURRENT, BASELINE) file pair; returns sections seen."""
    seen = set()
    for section in GATED_SECTIONS:
        if section not in baseline:
            continue
        seen.add(section)
        try:
            base = float(baseline[section]["speedup"])
        except (KeyError, TypeError, ValueError) as exc:
            failures.append(f"{section}: unreadable baseline entry ({exc})")
            rows.append((section, "?", "?", "?", "BAD-BASELINE"))
            continue
        floor = base / FACTOR
        try:
            cur = float(current[section]["speedup"])
        except (KeyError, TypeError, ValueError):
            failures.append(f"{section}: missing from current results")
            rows.append((section, f"{base:.2f}x", "-", f"{floor:.2f}x",
                         "MISSING"))
            continue
        ok = cur >= floor
        rows.append((section, f"{base:.2f}x", f"{cur:.2f}x",
                     f"{floor:.2f}x", "ok" if ok else "REGRESSED"))
        if not ok:
            failures.append(
                f"{section}: speedup {cur:.2f}x < floor {floor:.2f}x "
                f"(baseline {base:.2f}x)")
    return seen


def _print_table(rows):
    headers = ("section", "baseline", "current", "floor", "status")
    widths = [max(len(h), *(len(str(r[i])) for r in rows)) if rows
              else len(h) for i, h in enumerate(headers)]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    summary_path = None
    if "--summary" in args:
        i = args.index("--summary")
        try:
            summary_path = args[i + 1]
        except IndexError:
            print(__doc__)
            return 2
        del args[i:i + 2]
    if not args or len(args) % 2:
        print(__doc__)
        return 2
    pairs = list(zip(args[::2], args[1::2]))

    rows, failures, seen = [], [], set()
    combined = {"factor": FACTOR, "files": [], "sections": {}}
    for cur_path, base_path in pairs:
        try:
            current, baseline = _load(cur_path), _load(base_path)
        except (OSError, json.JSONDecodeError) as exc:
            failures.append(f"{cur_path} vs {base_path}: unreadable ({exc})")
            continue
        combined["files"].append(cur_path)
        for key, value in current.items():
            if isinstance(value, dict):
                combined["sections"].setdefault(key, {}).update(value)
        seen |= _check_pair(current, baseline, rows, failures)

    for section in GATED_SECTIONS:
        if section not in seen:
            print(f"[skip] {section}: not in any baseline")
    _print_table(rows)

    for section, base, cur, floor, status in rows:
        combined["sections"].setdefault(section, {})
        combined["sections"][section]["gate"] = {
            "baseline": base, "floor": floor, "status": status}
    combined["failures"] = failures
    if summary_path is not None:
        with open(summary_path, "w") as fh:
            json.dump(combined, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\ncombined summary written to {summary_path}")

    if failures:
        print("\nbenchmark regression detected:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbenchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
