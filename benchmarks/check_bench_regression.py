#!/usr/bin/env python3
"""Gate the fluid micro-benchmark against the committed baseline.

Usage::

    python benchmarks/check_bench_regression.py CURRENT.json BASELINE.json

Compares the *speedup ratios* (engine vs the in-tree frozen reference
implementation, measured on the same host in the same run), which makes
the gate machine-independent: CI hosts are slower than dev laptops, but
the engine and the reference slow down together.  The job fails when
any section's speedup drops below half of the committed baseline's
(i.e. a >2x relative regression).
"""

from __future__ import annotations

import json
import sys

#: A section regresses when its speedup falls below baseline / FACTOR.
FACTOR = 2.0

#: Sections that must be present in both files and are gated.
GATED_SECTIONS = ("solver_micro_cold", "step_cache_hit",
                  "sweep_cell_end_to_end", "solver_warm_start",
                  "sparse_large_batch", "schedule_fused",
                  "hier_rack_warm_reuse")


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    current = json.loads(open(argv[1]).read())
    baseline = json.loads(open(argv[2]).read())

    failures = []
    for section in GATED_SECTIONS:
        if section not in baseline:
            print(f"[skip] {section}: not in baseline")
            continue
        if section not in current:
            failures.append(f"{section}: missing from current results")
            continue
        cur = float(current[section]["speedup"])
        base = float(baseline[section]["speedup"])
        floor = base / FACTOR
        status = "ok" if cur >= floor else "REGRESSED"
        print(f"[{status}] {section}: speedup {cur:.2f}x "
              f"(baseline {base:.2f}x, floor {floor:.2f}x)")
        if cur < floor:
            failures.append(
                f"{section}: speedup {cur:.2f}x < floor {floor:.2f}x "
                f"(baseline {base:.2f}x)")

    if failures:
        print("\nfluid benchmark regression detected:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nfluid benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
