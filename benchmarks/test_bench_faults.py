"""Fault-path benchmarks (CI-gated, BENCH_faults.json).

Two claims the fault subsystem makes:

* **degraded repair pays** — when a wavelength drops mid-run, the
  incremental RWA treats the loss as churn and patches the surviving
  colouring forward step by step instead of re-solving every step from
  scratch under the mask.  The gated ``fault_repair_vs_resolve``
  section compares the two on the same degraded run — identical
  reports asserted first, then the wall-clock ratio recorded (both
  paths slow down together on a slow CI host, so the ratio is
  machine-independent);
* **retrying serving loses nothing** — a thousand-job Poisson stream
  with seeded link/node failures completes every job: each one either
  finishes (possibly after restarts) or is failed out after bounded
  retries, and capacity conservation holds throughout.
"""

from conftest import (BENCH_FAULTS_JSON, best_time as _time,
                      record_bench as _record)

from repro.collectives.ring_allreduce import generate_ring_allreduce
from repro.config import Workload, default_optical
from repro.core.substrates.optical_ring import OpticalRingSubstrate
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.serving import RetryPolicy, ServingEngine, poisson_traffic

#: The degraded collective: a 32-node ring all-reduce (62 steps) that
#: loses wavelength 0 at t=0 and runs the whole schedule under the mask.
NODES = 32
WORKLOAD = Workload(data_bytes=1 << 26)
SYSTEM = default_optical(NODES)
SCHEDULE = generate_ring_allreduce(NODES)
LOSS = FaultPlan.of([FaultEvent(time=0.0, kind=FaultKind.WAVELENGTH_DOWN,
                                wavelength=0)])


def _degraded_run(incremental):
    sub = OpticalRingSubstrate(SYSTEM, cache=False, incremental=incremental)
    return sub.execute_with_faults(SCHEDULE, WORKLOAD, LOSS), sub


def test_bench_fault_repair_vs_resolve(once):
    """Delta-patched degraded RWA vs a full re-solve per masked step.

    Folds the ``fault_repair_vs_resolve`` section into
    ``BENCH_faults.json`` — a CI-gated summary (see
    ``check_bench_regression.py``).
    """

    def resolve():
        return _degraded_run(incremental=False)[0]

    def repair():
        return _degraded_run(incremental=True)[0]

    def run():
        want = resolve()
        got, sub = _degraded_run(incremental=True)
        # Patching under the mask must not change answers.
        assert got.report.steps == want.report.steps
        assert got.report.total_time == want.report.total_time
        assert sub.delta_patched > 0      # the fast path actually ran
        assert sub.delta_fallbacks == 0   # and never fell off it
        t_resolve = _time(resolve, 3)
        t_repair = _time(repair, 3)
        return got, sub, t_resolve, t_repair

    got, sub, t_resolve, t_repair = once(run)
    speedup = t_resolve / t_repair
    print(f"\nfault repair vs resolve (N={NODES}, "
          f"{len(got.report.steps)} degraded steps, wavelength 0 lost): "
          f"full re-solve {t_resolve*1e3:.1f} ms, delta repair "
          f"{t_repair*1e3:.1f} ms -> {speedup:.2f}x "
          f"({sub.delta_patched} patches)")
    _record("fault_repair_vs_resolve", {
        "nodes": NODES, "steps": len(got.report.steps),
        "degraded_steps": len(got.outcome.degraded_steps),
        "patches": sub.delta_patched,
        "reference_s": t_resolve, "engine_s": t_repair,
        "speedup": speedup,
    }, path=BENCH_FAULTS_JSON, benchmark="faults")
    assert len(got.outcome.degraded_steps) == len(got.report.steps)
    assert speedup >= 2.0


def test_bench_fault_serving_stream(once):
    """1000 jobs under seeded link/node failures: nothing lost."""
    capacity = 32
    jobs = poisson_traffic(num_jobs=1000, arrival_rate=400.0, seed=0,
                           node_choices=(4, 8))
    plan = FaultPlan.poisson(duration=10.0, num_nodes=capacity, seed=1,
                             link_rate=2.0, node_rate=1.0,
                             mean_repair=0.02)

    def run():
        engine = ServingEngine(capacity=capacity)
        t0 = _time(lambda: engine.run(
            jobs, faults=plan,
            retry=RetryPolicy(max_retries=8, backoff=1e-4)), 1)
        rep = engine.run(jobs, faults=plan,
                         retry=RetryPolicy(max_retries=8, backoff=1e-4))
        return rep, t0

    rep, wall = once(run)
    completed = {r.job.job_id for r in rep.records}
    failed = {j.job_id for j in rep.failed_jobs}
    assert completed | failed == {j.job_id for j in jobs}  # nothing lost
    assert not completed & failed
    print(f"\nfaulty serving stream (1000 jobs, {capacity} nodes): "
          f"{len(completed)} done / {len(failed)} failed, "
          f"{rep.preemptions} kills, {rep.retries} retries, "
          f"availability {rep.availability:.2%}, {wall:.2f} s wall")
    _record("fault_serving_stream", {
        "jobs": 1000, "capacity": capacity,
        "completed": len(completed), "failed": len(failed),
        "preemptions": rep.preemptions, "retries": rep.retries,
        "availability": rep.availability,
        "fault_events": rep.fault_events_applied,
        "wall_s": wall,
    }, path=BENCH_FAULTS_JSON, benchmark="faults")
    assert rep.fault_events_applied > 0
