"""Figure 2 — the paper's evaluation figure, one bench per panel.

Each bench regenerates one panel (E-Ring, RD, O-Ring, Wrht at
N ∈ {128, 256, 512, 1024}), prints the series in milliseconds
("normalized time", the figure's y axis), and asserts the paper's
qualitative shape:

* Wrht is fastest everywhere;
* O-Ring and RD are the slow baselines at scale;
* E-Ring is the strongest baseline;
* Wrht's win grows (or holds) with scale.
"""

import pytest

from repro.analysis.figure2 import (PAPER_SCALES, figure2_panel,
                                    render_panel)


def _run_panel(model: str):
    return figure2_panel(model)


def _check_shape(panel):
    for i, n in enumerate(panel.scales):
        wrht = panel.times["wrht"][i]
        for baseline in ("e-ring", "rd", "o-ring"):
            assert wrht < panel.times[baseline][i], \
                f"{panel.model} N={n}: wrht must beat {baseline}"
        # E-Ring is the best baseline while bandwidth dominates; for the
        # smallest model (GoogLeNet) at N=1024 its 2(N-1) latency terms
        # overtake RD — a real crossover, so only assert the
        # bandwidth-dominated regime.
        if panel.model != "googlenet":
            assert panel.times["e-ring"][i] <= panel.times["rd"][i]
    # the paper's win factors: ~>3x vs E-Ring and ~>8x vs O-Ring at 1024
    last = len(panel.scales) - 1
    assert panel.times["e-ring"][last] / panel.times["wrht"][last] > 2.5
    assert panel.times["o-ring"][last] / panel.times["wrht"][last] > 8.0


@pytest.mark.parametrize("model", ["alexnet", "vgg16", "resnet50",
                                   "googlenet"])
def test_fig2_panel(model, once):
    panel = once(_run_panel, model)
    print()
    print(render_panel(panel))
    _check_shape(panel)


def test_fig2_scales_are_paper_scales(once):
    panel = once(_run_panel, "alexnet")
    assert panel.scales == PAPER_SCALES == (128, 256, 512, 1024)
