"""Serving-layer benchmarks (CI-gated, BENCH_serving.json).

Two claims the serving engine makes, both measured on a thousand-job
stream through one shared warm substrate:

* **memoization pays** — a Poisson mix collapses onto a few dozen
  (placement, message-sizes) profile classes, so the engine's
  schedule/profile caches skip the substrate execution for all but the
  first job of each class.  The gated ``serving_warm_throughput``
  section compares the warm engine against a no-memoization reference
  (every job profiled from scratch) on identical traffic — identical
  reports asserted first, then the wall-clock ratio recorded
  (machine-independent: both paths slow down together);
* **the size-adaptive switch pays** — on a bimodal mix of
  latency-bound activation reduces and bandwidth-bound gradient
  reduces, dispatching each message by size beats pinning either
  algorithm fleet-wide on throughput, mean JCT, *and* p99 JCT.
"""

from conftest import (BENCH_SERVING_JSON, best_time as _time,
                      record_bench as _record)

from repro.config import default_electrical
from repro.core.substrates import get_substrate
from repro.serving import (ServingEngine, adaptive_policy, fixed_policy,
                           poisson_traffic, trace_traffic)

#: The shared fabric: a 32-port electrical switch (the shape with a
#: genuine latency/bandwidth crossover between RD and ring).
CAPACITY = 32
SYSTEM = default_electrical(CAPACITY)
NUM_JOBS = 1000


class _ColdProfileEngine(ServingEngine):
    """Reference: the same engine with memoization defeated.

    Clearing the schedule/profile caches before every profile forces
    each job to execute its full message batch on the substrate — what
    serving would cost if every arrival were priced from scratch.
    """

    def _profile(self, job, nodes):
        self._profiles.clear()
        self._schedules.clear()
        return super()._profile(job, nodes)


def _engine(substrate, cls=ServingEngine, collectives=None):
    return cls(substrate_name="electrical-switch", system=SYSTEM,
               substrate=substrate,
               collectives=collectives or adaptive_policy())


def test_bench_serving_warm_throughput(once):
    """1000 jobs, warm memoized engine vs per-job cold profiling."""
    jobs = poisson_traffic(num_jobs=NUM_JOBS, arrival_rate=200.0, seed=0)
    sub = get_substrate("electrical-switch", SYSTEM)

    def warm():
        return _engine(sub).run(jobs)

    def cold():
        return _engine(sub, cls=_ColdProfileEngine).run(jobs)

    def run():
        warm_rep = warm()  # primes the substrate's own caches too
        cold_rep = cold()
        # Memoization must not change answers.
        assert cold_rep.makespan == warm_rep.makespan
        assert cold_rep.jct() == warm_rep.jct()
        assert cold_rep.algorithm_mix == warm_rep.algorithm_mix
        t_warm = _time(warm, 3)
        t_cold = _time(cold, 2)
        return warm_rep, t_cold, t_warm

    rep, t_cold, t_warm = once(run)
    speedup = t_cold / t_warm
    wall_rate = NUM_JOBS / t_warm
    print(f"\nserving warm throughput ({NUM_JOBS} jobs, {CAPACITY}-port "
          f"switch): cold-profile {t_cold:.2f} s, warm {t_warm:.2f} s "
          f"-> {speedup:.2f}x ({wall_rate:.0f} jobs/s wall, "
          f"{rep.throughput_jobs:.1f} jobs/s simulated)")
    _record("serving_warm_throughput", {
        "jobs": NUM_JOBS, "capacity": CAPACITY,
        "reference_s": t_cold, "engine_s": t_warm, "speedup": speedup,
        "wall_jobs_per_s": wall_rate,
        "simulated_jobs_per_s": rep.throughput_jobs,
        "jct_p99_s": rep.jct(99),
    }, path=BENCH_SERVING_JSON, benchmark="serving")
    assert rep.num_jobs == NUM_JOBS
    assert speedup >= 1.5


def test_bench_serving_adaptive_beats_fixed(once):
    """The size switch wins on a mixed small/large stream."""
    rows = []
    for i in range(200):
        small = i % 2 == 0
        rows.append(dict(model="alexnet", arrival_time=i * 0.002,
                         num_steps=6 if small else 4,
                         num_nodes=(4, 8, 16)[i % 3],
                         message_sizes=((128e3,) * 4 if small
                                        else (32e6,))))
    jobs = trace_traffic(rows)
    sub = get_substrate("electrical-switch", SYSTEM)

    def run():
        out = {}
        for label, coll in (("adaptive", adaptive_policy()),
                            ("ring", fixed_policy("ring")),
                            ("rd", fixed_policy("recursive-doubling"))):
            out[label] = _engine(sub, collectives=coll).run(jobs)
        return out

    reps = once(run)
    print()
    for label, rep in reps.items():
        print(f"  {label:9s} {rep.throughput_jobs:7.2f} jobs/s  "
              f"jct mean {rep.jct()*1e3:7.2f} ms  "
              f"p99 {rep.jct(99)*1e3:7.2f} ms  [{rep.collectives}]")
    adapt, ring, rd = reps["adaptive"], reps["ring"], reps["rd"]
    _record("serving_adaptive_switch", {
        "jobs": len(jobs),
        "adaptive_jct_mean_s": adapt.jct(),
        "ring_jct_mean_s": ring.jct(),
        "rd_jct_mean_s": rd.jct(),
        "adaptive_throughput": adapt.throughput_jobs,
        "ring_throughput": ring.throughput_jobs,
        "rd_throughput": rd.throughput_jobs,
    }, path=BENCH_SERVING_JSON, benchmark="serving")
    # The switch must measurably beat BOTH fixed arms on this mix.
    assert adapt.jct() < ring.jct()
    assert adapt.jct() < rd.jct()
    assert adapt.throughput_jobs > ring.throughput_jobs
    assert adapt.throughput_jobs > rd.throughput_jobs
    assert adapt.jct(99) < min(ring.jct(99), rd.jct(99))
