"""§2 quantitative claims: step counts and wavelength requirements.

Regenerates the step-count table (all algorithms × paper scales) and the
wavelength-requirement table, asserting the generated schedules agree
with the paper's closed forms.
"""

from repro.analysis.tables import (render_step_count_table,
                                   render_wavelength_requirement_table,
                                   step_count_table,
                                   wavelength_requirement_table)


def test_step_count_table(once):
    rows = once(step_count_table)
    print()
    print(render_step_count_table(rows))
    for r in rows:
        assert r.ring == 2 * (r.num_nodes - 1)
        assert r.wrht == r.wrht_paper_bound  # generator == closed form
        assert r.wrht < r.ring               # the paper's whole point
        assert r.wrht <= r.halving_doubling


def test_wavelength_requirement_table(once):
    rows = once(wavelength_requirement_table)
    print()
    print(render_wavelength_requirement_table(rows))
    for r in rows:
        # tree steps demand exactly the paper's ⌊m/2⌋ per direction
        assert r.tree_demand_generated == r.tree_requirement
        # the full schedule (incl. all-to-all) stays within formulas
        assert r.peak_demand_generated <= max(r.tree_requirement,
                                              r.alltoall_requirement)
