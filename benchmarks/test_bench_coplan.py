"""Strategy co-planning benchmark (CI-gated, BENCH_coplan.json).

The headline claim of the co-planner: on a multi-phase strategy
profile, searching (parallelization x collective x topology program)
*jointly* beats the best plan that fixes the topology up front.

The config: 16 nodes, AlexNet, strategies capped at tensor degree 4
(``max_tensor`` models the compute-side cap on intra-layer splitting —
without it pure TP trivially wins on communication alone, since
activations are orders of magnitude smaller than gradients).  The
``dp4+tp4`` profile moves ~5x fewer gradient bytes than pure DP (each
DP group all-reduces a quarter shard), but its strided DP groups are
congested on the static boot ring; only a reconfiguring fabric —
installing the strided ring circuits once and reusing them across all
gradient buckets via the lookahead DP — converts the byte reduction
into wall-clock.  The gated ``coplan_vs_best_fixed`` section records
the *simulated total time* ratio of the best fixed-topology (static)
cell over the co-planned best — a pure model quantity, machine-
independent.
"""

from conftest import BENCH_COPLAN_JSON, record_bench as _record

from repro.core.topoplan import strategy_plan_table
from repro.models.strategies import enumerate_strategies

NODES = 16
MODEL = "alexnet"
MAX_TENSOR = 4


def test_bench_coplan_vs_best_fixed(once):
    """Joint search vs the best fixed-(strategy, topology) plan.

    Folds the ``coplan_vs_best_fixed`` section into
    ``BENCH_coplan.json`` — a CI-gated summary (see
    ``check_bench_regression.py``).
    """

    def run():
        return strategy_plan_table(
            NODES, MODEL,
            strategies=enumerate_strategies(NODES, max_tensor=MAX_TENSOR),
            rack_sizes=(), fidelity="simulate")

    table = once(run)
    fixed = [p for p in table if p.policy == "static"]
    assert fixed, "the grid must price every static cell"
    best_fixed = min(fixed, key=lambda p: p.predicted_time)
    best = min(table, key=lambda p: p.predicted_time)
    speedup = best_fixed.predicted_time / best.predicted_time

    # The acceptance pin: co-planning strictly beats every fixed plan,
    # by reconfiguring (a static winner would make the claim vacuous).
    assert best.policy in ("reconfigure", "lookahead")
    assert speedup >= 1.5
    # The winner exploits model parallelism, not just a better ring.
    assert best.strategy.tensor_parallel > 1

    print(f"\ncoplan vs best fixed (N={NODES}, {MODEL}, "
          f"max_tensor={MAX_TENSOR}): fixed {best_fixed.label} "
          f"{best_fixed.predicted_time*1e3:.3f} ms, co-planned "
          f"{best.label} {best.predicted_time*1e3:.3f} ms "
          f"-> {speedup:.2f}x")
    _record("coplan_vs_best_fixed", {
        "nodes": NODES, "model": MODEL, "max_tensor": MAX_TENSOR,
        "best_fixed": best_fixed.label,
        "best_fixed_total_s": best_fixed.predicted_time,
        "coplan": best.label,
        "coplan_total_s": best.predicted_time,
        "speedup": speedup,
    }, path=BENCH_COPLAN_JSON, benchmark="strategy-coplan")
