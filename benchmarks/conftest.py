"""Shared fixtures for the benchmark harness.

Every bench prints the series it reproduces (the paper's rows), so the
``pytest benchmarks/ --benchmark-only`` log doubles as the experiment
record copied into ``EXPERIMENTS.md``.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark fixture.

    Experiment benches measure a *simulation result*, not CPU micro-
    performance; a single round keeps the harness fast while still
    recording wall time per experiment.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)

    return run
