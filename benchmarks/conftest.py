"""Shared fixtures and helpers for the benchmark harness.

Every bench prints the series it reproduces (the paper's rows), so the
``pytest benchmarks/ --benchmark-only`` log doubles as the experiment
record copied into ``EXPERIMENTS.md``.

The perf benches (``test_bench_fluid.py``, ``test_bench_hier.py``)
share one machine-readable summary — ``BENCH_fluid.json`` at the repo
root, the artifact CI uploads and gates via
``check_bench_regression.py`` — so the path constant and the
record/measure helpers live here.
"""

import json
import time
from pathlib import Path

import pytest

#: Where the machine-readable speedup summaries accumulate (repo root).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fluid.json"
BENCH_RWA_JSON = Path(__file__).resolve().parent.parent / "BENCH_rwa.json"
BENCH_SERVING_JSON = (Path(__file__).resolve().parent.parent
                      / "BENCH_serving.json")
BENCH_FAULTS_JSON = (Path(__file__).resolve().parent.parent
                     / "BENCH_faults.json")
BENCH_OCS_JSON = Path(__file__).resolve().parent.parent / "BENCH_ocs.json"
BENCH_COPLAN_JSON = (Path(__file__).resolve().parent.parent
                     / "BENCH_coplan.json")


def best_time(fn, repeats):
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def record_bench(section, payload, path=BENCH_JSON, benchmark="fluid-engine"):
    """Merge one section into the summary at ``path`` (creating it if
    needed).  ``benchmark`` names the suite on first write only."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    data.setdefault("benchmark", benchmark)
    data.setdefault("unit", "seconds")
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark fixture.

    Experiment benches measure a *simulation result*, not CPU micro-
    performance; a single round keeps the harness fast while still
    recording wall time per experiment.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1,
                                  warmup_rounds=0)

    return run
