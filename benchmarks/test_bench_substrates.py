"""EXT-S — substrate registry: RWA memoization and batch execution.

Two records:

* the planner-heavy path — simulate-fidelity ``plan_wrht`` sweeps
  ``m x variant`` candidates on one substrate; the RWA cache removes
  the repeated per-step wavelength assignments (the refactor's target
  speedup, printed as a cached/uncached ratio);
* the registry sweep — one pinned ring all-reduce on every registered
  substrate (the table the torus extension adds a row to).
"""

import time

import pytest

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.analysis.sweeps import substrate_sweep
from repro.config import OpticalRingSystem, Workload
from repro.core.planner import plan_wrht
from repro.core.substrates import OpticalRingSubstrate


def test_simulated_planning_cache_speedup(once):
    """Simulate-fidelity planning, RWA cache on vs off (N=32, w=16)."""
    system = OpticalRingSystem(num_nodes=32, num_wavelengths=16)
    wl = Workload(data_bytes=64 * units.MB)

    def plan_with(cache):
        sub = OpticalRingSubstrate(system, cache=cache)
        t0 = time.perf_counter()
        plan = plan_wrht(system, wl, fidelity="simulate", substrate=sub)
        return time.perf_counter() - t0, plan, sub

    def run():
        plan_with(True)   # warm both code paths
        plan_with(False)
        # Best-of-2 per mode guards the assertion against scheduler
        # noise on loaded CI runners.
        on = [plan_with(True) for _ in range(2)]
        off = [plan_with(False) for _ in range(2)]
        t_on, plan_on, sub = min(on, key=lambda r: r[0])
        t_off, plan_off, _ = min(off, key=lambda r: r[0])
        return t_on, t_off, plan_on, plan_off, sub.rwa_cache_info()

    t_on, t_off, plan_on, plan_off, info = once(run)
    print()
    print(simple_table(
        ["rwa cache", "plan time", "m", "variant", "hit rate"],
        [("on", f"{t_on * 1e3:.1f} ms", plan_on.group_size,
          plan_on.variant, f"{info.hit_rate:.0%}"),
         ("off", f"{t_off * 1e3:.1f} ms", plan_off.group_size,
          plan_off.variant, "-")],
        title="EXT-S2: simulate-fidelity plan_wrht, cached vs cold "
              f"(speedup {t_off / t_on:.2f}x)"))
    assert plan_on.predicted_time == plan_off.predicted_time
    assert t_on < t_off


def test_substrate_registry_sweep(once):
    """Every registered substrate on one ring all-reduce (N=16)."""
    rows = once(substrate_sweep, 16, Workload(data_bytes=10 * units.MB))
    print()
    print(simple_table(
        ["substrate", "kind", "time", "steps"],
        [(r.substrate, r.kind, units.fmt_time(r.time), r.steps)
         for r in rows],
        title="EXT-S1: ring all-reduce across registered substrates "
              "(N=16, 10 MB)"))
    assert all(r.time > 0 for r in rows)


@pytest.mark.parametrize("name", ["optical-ring", "electrical-ring",
                                  "electrical-switch", "optical-torus"])
def test_substrate_execution_speed(benchmark, name):
    """Micro-benchmark: warm-substrate execution of a 16-node ring."""
    from repro.collectives.ring_allreduce import generate_ring_allreduce
    from repro.core.substrates import get_substrate

    sub = get_substrate(name)
    sched = generate_ring_allreduce(16)
    wl = Workload(data_bytes=10 * units.MB)
    sub.execute(sched, wl)  # build the network outside the timer

    report = benchmark(sub.execute, sched, wl)
    assert report.num_steps == 30
