"""Hierarchical rack-fabric benchmarks (CI-gated, BENCH_fluid.json).

The ``"hier-rack"`` substrate leans on both memoization layers at once:
its electrical level repeats one fluid pattern per local phase (served
by the pattern cache after the first solve) and its optical level
re-poses the same leader-ring RWA subproblem every step (served by the
RWA cache).  The benchmark measures exactly that: executing the
matching hierarchical ring all-reduce on one warm substrate instance
vs constructing a fresh substrate — cold topologies, cold caches — for
every execution, asserting identical reports first.

The measurement folds into ``BENCH_fluid.json`` alongside the fluid
engine's sections; ``check_bench_regression.py`` gates the speedup
ratio against the committed baseline (machine-independent: warm and
cold paths slow down together on a slower host).
"""

from conftest import best_time as _time, record_bench as _record

from repro import units
from repro.collectives.hierarchical_ring import generate_hierarchical_ring
from repro.config import HierarchicalSystem, Workload
from repro.core.substrates import HierarchicalRackSubstrate

#: The benchmark instance: 64 hosts as 8 racks of 8, a gradient-sized
#: payload — 14 local steps (one fluid pattern) + 14 leader steps (one
#: RWA pattern).
NODES = 64
GROUP = 8
SYSTEM = HierarchicalSystem(num_nodes=NODES, group_size=GROUP)
WORKLOAD = Workload(data_bytes=16 * units.MB)
SCHED = generate_hierarchical_ring(NODES, GROUP)


def test_bench_hier_rack_warm_reuse(once):
    """Warm hier-rack execution vs cold-substrate-per-call.

    The sweep/planner usage pattern: one pooled substrate executes the
    same configuration many times, paying topology construction, fluid
    pattern solves and RWA once.  The ≥1.5x acceptance bound is
    asserted here (it lands ~2.3x).
    """

    def cold():
        return HierarchicalRackSubstrate(SYSTEM).execute(SCHED, WORKLOAD)

    def run():
        warm_sub = HierarchicalRackSubstrate(SYSTEM)
        warm_sub.execute(SCHED, WORKLOAD)  # prime both levels' caches
        # identical results first (warm caches must not change answers)
        warm_rep = warm_sub.execute(SCHED, WORKLOAD)
        cold_rep = cold()
        assert warm_rep.steps == cold_rep.steps
        assert warm_rep.total_time == cold_rep.total_time
        t_cold = _time(cold, 5)
        t_warm = _time(lambda: warm_sub.execute(SCHED, WORKLOAD), 15)
        return t_cold, t_warm

    t_cold, t_warm = once(run)
    speedup = t_cold / t_warm
    print(f"\nhier-rack warm reuse (N={NODES}, g={GROUP}, "
          f"{SCHED.num_steps} steps): cold {t_cold*1e3:.2f} ms, "
          f"warm {t_warm*1e3:.2f} ms -> {speedup:.1f}x")
    _record("hier_rack_warm_reuse", {
        "nodes": NODES, "group_size": GROUP, "steps": SCHED.num_steps,
        "reference_s": t_cold, "engine_s": t_warm, "speedup": speedup})
    assert speedup >= 1.5
