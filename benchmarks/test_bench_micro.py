"""EXT-A6 — simulator micro-benchmarks.

CPU-performance benches for the pieces that run inside sweeps: schedule
generation, the full optical executor (real RWA per step), the fluid
max-min solver, the semantic verifier, and the planner.  These are the
genuine pytest-benchmark targets (multiple rounds).
"""

import numpy as np

from repro import units
from repro.collectives import (WrhtParameters, generate_ring_allreduce,
                               generate_wrht, verify_allreduce)
from repro.config import ElectricalSystem, OpticalRingSystem, Workload
from repro.core.executor import (execute_on_electrical,
                                 execute_on_optical_ring)
from repro.core.planner import plan_wrht
from repro.models.catalog import paper_workload
from repro.simulation.flows import Flow, max_min_fair_rates

WL = Workload(data_bytes=100 * units.MB)


def test_generate_wrht_1024(benchmark):
    params = WrhtParameters(num_nodes=1024, group_size=3,
                            num_wavelengths=64, alltoall_threshold=3)
    sched, info = benchmark(generate_wrht, params)
    assert sched.num_steps == 13


def test_generate_ring_256(benchmark):
    sched = benchmark(generate_ring_allreduce, 256)
    assert sched.num_steps == 510


def test_optical_executor_wrht_1024(benchmark):
    """Full-fidelity Wrht execution (RWA every step) at paper scale."""
    system = OpticalRingSystem(num_nodes=1024)
    params = WrhtParameters(num_nodes=1024, group_size=3,
                            num_wavelengths=64, alltoall_threshold=3)
    sched, _ = generate_wrht(params)
    report = benchmark(execute_on_optical_ring, sched, system, WL)
    assert report.num_steps == 13
    assert report.peak_wavelength_demand() <= 64


def test_electrical_executor_rd_256(benchmark):
    from repro.collectives import generate_recursive_doubling
    system = ElectricalSystem(num_nodes=256)
    sched = generate_recursive_doubling(256)
    report = benchmark(execute_on_electrical, sched, system, WL)
    assert report.num_steps == 8


def test_maxmin_solver_1000_flows(benchmark):
    rng = np.random.default_rng(0)
    links = {f"L{i}": float(rng.uniform(1, 10)) for i in range(200)}
    names = list(links)
    flows = []
    for j in range(1000):
        k = int(rng.integers(1, 5))
        path = tuple(rng.choice(names, size=k, replace=False))
        flows.append(Flow(src=0, dst=j + 1, size=1.0, path=path))
    rates = benchmark(max_min_fair_rates, flows, links)
    assert (rates > 0).all()


def test_verifier_wrht_256(benchmark):
    params = WrhtParameters(num_nodes=256, group_size=3,
                            num_wavelengths=64, alltoall_threshold=3)
    sched, _ = generate_wrht(params)
    benchmark(verify_allreduce, sched, 1)


def test_planner_paper_point(benchmark):
    """One full Wrht planning pass (the unit of every Fig. 2 cell)."""
    system = OpticalRingSystem(num_nodes=512)
    plan = benchmark(plan_wrht, system, paper_workload("resnet50"))
    assert plan.predicted_time > 0
