"""EXT-A5 — payload-size crossover.

Sweeps the all-reduce payload from 1 KB to 1 GB at N=256.  For tiny
payloads the step count dominates (RD and Wrht, both O(log), win over
2(N−1)-step rings); for DNN-sized payloads Wrht's striped bandwidth
wins outright — locating the crossovers the paper's regime sits beyond.
"""

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.analysis.sweeps import crossover_sweep

PAYLOADS = [1 * units.KB, 32 * units.KB, 1 * units.MB, 32 * units.MB,
            256 * units.MB, 1 * units.GB]


def _run():
    return crossover_sweep(256, PAYLOADS)


def test_payload_crossover(once):
    rows = once(_run)
    print()
    print(simple_table(
        ["payload", "e-ring", "rd", "o-ring", "wrht", "winner"],
        [(units.fmt_bytes(r.data_bytes),
          *(units.fmt_time(r.times[a])
            for a in ("e-ring", "rd", "o-ring", "wrht")), r.winner())
         for r in rows],
        title="EXT-A5: payload sweep @ N=256"))

    # At DNN gradient sizes (>= 25 MB) Wrht must win.
    for r in rows:
        if r.data_bytes >= 25 * units.MB:
            assert r.winner() == "wrht", units.fmt_bytes(r.data_bytes)
    # Pure latency regime (1 KB): rings lose badly.  RD's few cheap
    # steps nearly tie with Wrht — the planner collapses Wrht to a
    # 3-step wide-group plan whose per-step MRR tuning is the only cost,
    # so the two log-depth algorithms converge while rings stay >3x off.
    tiny = rows[0]
    assert tiny.winner() in ("rd", "wrht")
    assert tiny.times["rd"] < 1.5 * tiny.times["wrht"]
    assert tiny.times["o-ring"] > 3 * tiny.times["wrht"]
    assert tiny.times["e-ring"] > 3 * tiny.times["wrht"]
