"""EXT-R — reconfigurable OCS fabric: reconfiguration-delay ablation.

Sweeps the OCS reconfiguration delay from 0 (an ideal, infinitely agile
switch) through microsecond-class prototypes up to 10 ms (MEMS-class
mirrors) and, at each point, co-plans (collective algorithm x
reconfiguration policy) on a 16-node fabric moving a 64 MB gradient —
the documented workload for the acceptance claims:

* at small delays the co-planner's reconfiguring plan beats the best
  *static-ring* plan — dramatically on the latency-bound small-tensor
  workload (fewer, direct-circuit steps vs 2(N-1) neighbour hops), and
  marginally on the bandwidth-bound gradient workload (both shapes are
  bandwidth-optimal; only overheads differ);
* at ``delay = inf`` the fabric degrades to its static boot topology
  and the co-planner's answer coincides with the static plan exactly.
"""

import pytest

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.config import Workload, default_ocs
from repro.core.topoplan import plan_topology, topology_plan_table

NUM_NODES = 16
#: The documented ablation workloads on a 16-node fabric: a 64 KB
#: latency-bound small-tensor all-reduce (where topology co-planning
#: wins big) and a 64 MB ResNet-50-class fp32 gradient exchange (where
#: every bandwidth-optimal shape ties and only overheads differ).
WORKLOADS = (Workload(data_bytes=64 * units.KB, name="tensor-64KB"),
             Workload(data_bytes=64 * units.MB, name="grads-64MB"))

DELAYS = (0.0, 1 * units.USEC, 10 * units.USEC, 100 * units.USEC,
          1 * units.MSEC, 10 * units.MSEC, float("inf"))


def _best_static(system, workload):
    plans = [p for p in topology_plan_table(system, workload)
             if p.policy == "static"]
    return min(plans, key=lambda p: p.predicted_time)


@pytest.mark.parametrize("workload", WORKLOADS,
                         ids=[w.name for w in WORKLOADS])
def test_reconfiguration_delay_ablation(once, workload):
    """Co-planned vs best-static time as the switch slows down."""

    def run():
        rows = []
        for delay in DELAYS:
            system = default_ocs(NUM_NODES, reconfiguration_delay=delay)
            best = plan_topology(system, workload)
            static = _best_static(system, workload)
            rows.append((delay, best, static))
        return rows

    rows = once(run)
    print()
    print(simple_table(
        ["delay", "best plan", "time", "best static", "speedup"],
        [("inf" if d == float("inf") else units.fmt_time(d),
          f"{b.algorithm} ({b.policy}, {b.num_reconfigurations} reconf)",
          units.fmt_time(b.predicted_time),
          units.fmt_time(s.predicted_time),
          f"{s.predicted_time / b.predicted_time:.2f}x")
         for d, b, s in rows],
        title=f"EXT-R1 reconfiguration-delay ablation "
              f"(N={NUM_NODES}, {workload.name})"))

    # The acceptance claims, pinned on the documented workloads:
    for delay, best, static in rows:
        assert best.predicted_time <= static.predicted_time * (1 + 1e-12)
    ideal, ideal_static = rows[0][1], rows[0][2]
    # An agile switch reconfigures — per step, or via the lookahead
    # program, which can strictly beat per-step rounds even at delay 0
    # by installing a union config that serves a multi-degree step's
    # pairs concurrently where decomposition rounds serialize.
    assert ideal.policy in ("reconfigure", "lookahead")
    assert ideal.predicted_time < ideal_static.predicted_time  # strict win
    if workload.name == "tensor-64KB":
        # The headline co-planning win: an agile OCS serves the
        # latency-bound all-reduce >1.5x faster than any static plan.
        assert ideal_static.predicted_time > 1.5 * ideal.predicted_time
    frozen_best, frozen_static = rows[-1][1], rows[-1][2]
    assert frozen_best.policy == "static"
    assert frozen_best.predicted_time == frozen_static.predicted_time
    assert frozen_best.num_reconfigurations == 0


def test_decomposition_modes_agree_on_matchings(once):
    """Matching-shaped demands need one round under either mode, so the
    co-planned times coincide; the modes only diverge on demands whose
    greedy first-fit overshoots the degree bound."""
    system = default_ocs(NUM_NODES)

    def run():
        return {mode: plan_topology(system, WORKLOADS[-1],
                                    decomposition=mode)
                for mode in ("greedy", "optimal")}

    plans = once(run)
    print()
    for mode, plan in plans.items():
        print(f"{mode:>8}: {plan.algorithm} ({plan.policy}) "
              f"{units.fmt_time(plan.predicted_time)}")
    greedy, optimal = plans["greedy"], plans["optimal"]
    assert greedy.predicted_time == optimal.predicted_time
    assert (greedy.algorithm, greedy.policy) == \
        (optimal.algorithm, optimal.policy)
