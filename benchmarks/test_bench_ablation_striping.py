"""EXT-A3 — striping ablation: where does the WDM win come from?

Costs Wrht with striping on/off plus the striped-ring thought
experiment.  Confirms (a) striping is the dominant lever (without it
Wrht degenerates to ~step-count × S/B and *loses* to O-Ring's pipeline
on pure bandwidth for big payloads), and (b) the honest extension
finding that a WDM-striped ring all-reduce would be latency-bound.
"""

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.analysis.sweeps import striping_sweep
from repro.models.catalog import paper_workload


def _run():
    return striping_sweep(1024, paper_workload("vgg16"))


def test_striping_ablation(once):
    rows = once(_run)
    print()
    print(simple_table(
        ["configuration", "time", "steps", "detail"],
        [(r.label, units.fmt_time(r.time), r.steps, r.detail)
         for r in rows],
        title="EXT-A3: VGG16 @ N=1024 striping ablation"))
    t = {r.label: r.time for r in rows}
    # striping buys Wrht an order of magnitude
    assert t["wrht+striping"] * 8 < t["wrht-no-striping"]
    # without striping, the minimal-step tree cannot beat the pipeline
    assert t["wrht-no-striping"] > t["o-ring (1 wavelength)"]
    # the paper's comparison: striped Wrht crushes the unstriped ring
    assert t["wrht+striping"] * 8 < t["o-ring (1 wavelength)"]
    # extension finding: a striped ring would be latency-bound but fast
    assert t["ring+striping (thought experiment)"] < \
        t["o-ring (1 wavelength)"]
