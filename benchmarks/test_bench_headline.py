"""Headline claims — 75.76% (electrical) and 91.86% (optical) reductions.

Reproduces both aggregates over the full Fig. 2 grid and asserts the
measured values land within a few points of the paper's, which is the
fidelity a different simulator can honestly claim.
"""

from repro.analysis.headline import headline_reductions, render_headline


def test_headline_reductions(once):
    result = once(headline_reductions)
    print()
    print(render_headline(result))

    # paper: 75.76% vs the electrical system's ring all-reduce
    assert abs(result.electrical_reduction
               - result.PAPER_ELECTRICAL) < 0.05, \
        f"electrical reduction {result.electrical_reduction:.2%} " \
        f"strays >5pp from paper"
    # paper: 91.86% vs the optical ring all-reduce
    assert abs(result.optical_reduction - result.PAPER_OPTICAL) < 0.03, \
        f"optical reduction {result.optical_reduction:.2%} " \
        f"strays >3pp from paper"
    # every grid point individually must favour Wrht
    assert all(red > 0 for (_, _, _, red) in result.per_point)
