"""EXT-A2 — group-size ablation: is the planner's ``m`` actually optimal?

Sweeps *every* feasible group size exhaustively for each paper model at
N=1024 and confirms the planner (which subsamples candidates) returns a
configuration no slower than the exhaustive best.
"""

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.config import default_optical
from repro.core.planner import feasible_group_sizes, plan_table, plan_wrht
from repro.models.catalog import paper_workload

N = 1024


def _run(model: str):
    system = default_optical(N)
    wl = paper_workload(model)
    rows = plan_table(system, wl,
                      group_sizes=feasible_group_sizes(
                          N, system.num_wavelengths))
    plan = plan_wrht(system, wl)
    return rows, plan


def test_groupsize_ablation_vgg16(once):
    rows, plan = once(_run, "vgg16")
    show = [r for r in rows if r[0] in (2, 3, 4, 5, 9, 17, 33, 65, 129)]
    print()
    print(simple_table(
        ["m", "steps", "time"],
        [(m, s, units.fmt_time(t)) for m, s, t in show],
        title=f"EXT-A2: VGG16 @ N={N}, exhaustive m sweep "
              f"(last-level variant)"))
    exhaustive_best = min(t for _, _, t in rows)
    print(f"planner pick: m={plan.group_size} ({plan.variant}) "
          f"{units.fmt_time(plan.predicted_time)}; exhaustive best "
          f"{units.fmt_time(exhaustive_best)}")
    assert plan.predicted_time <= exhaustive_best * (1 + 1e-9)


def test_groupsize_ablation_googlenet(once):
    rows, plan = once(_run, "googlenet")
    exhaustive_best = min(t for _, _, t in rows)
    assert plan.predicted_time <= exhaustive_best * (1 + 1e-9)
    # small payloads still prefer small m under striping
    assert plan.group_size <= 5
