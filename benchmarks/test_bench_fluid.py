"""Fluid-engine performance benchmarks (the CI-gated speedup record).

Three levels compare against the frozen pre-refactor engine
(:mod:`repro.simulation._reference`) on the same inputs:

* **solver micro** — one cold 64-flow synchronous step through the
  batch-compiled event loop (compile + vectorized events, no cache);
* **step-cache hit path** — the same 64-flow step through
  ``step_time`` as the substrates drive it, where the pattern cache
  serves repeats of the step (a ring schedule repeats one pattern
  2(N−1) times);
* **end-to-end sweep cell** — a full ``substrate_sweep`` cell
  (electrical-ring ring all-reduce) against a loop over the reference
  engine.

Three more compare the active-set engine against its own previous
generation (the PR 3 paths, reachable via constructor flags):

* **warm-start solver** — a cold (cache-miss) 64-flow incast-staircase
  step: warm-started event solves vs refilling every event from zero
  (``warm_start=False``, the PR 3 behaviour);
* **sparse large batch** — a 1024-flow step: scipy CSR incidence vs
  the dense matrix the PR 3 engine always used;
* **fused schedule** — a whole ring all-reduce schedule through
  ``step_time_many``'s fused path vs the per-step ``step_time`` loop.

Two compare this PR's delta-aware hot paths against the PR 5 shapes:

* **shared-compile sweep** — a link-rate sweep on one substrate (the
  shape-keyed compile cache shares flow-batch structures across cells)
  vs a fresh substrate per cell;
* **admission warm start** — an admission-heavy staircase run, where
  warm starts now survive mid-flight admissions instead of refilling
  from zero.

Every test folds its measurement into ``BENCH_fluid.json`` at the repo
root — the machine-readable speedup summary CI uploads as an artifact
and gates against the committed baseline
(``benchmarks/BENCH_fluid.json``, see ``check_bench_regression.py``).
"""

import pytest

from conftest import best_time as _time, record_bench as _record

from repro import units
from repro.simulation._reference import ReferenceFluidSimulator
from repro.simulation.flows import have_sparse
from repro.simulation.fluid import FluidNetworkSimulator
from repro.topology.ring import RingTopology
from repro.topology.switched import SwitchedStar

#: The canonical micro-benchmark instance: a 64-flow synchronous step
#: (distance-8 exchange on a 64-node bidirectional ring; distinct sizes
#: force one allocation event per completion — the worst case).
NODES = 64
PAIRS = [(i, (i + 8) % NODES, 1.0 * units.MB + i) for i in range(NODES)]


def _ring():
    return RingTopology(NODES, capacity=100 * units.GBPS,
                        latency=1 * units.USEC)


def _staircase(total, max_fan):
    """An incast staircase: destination groups of fan-in 1..max_fan.

    Every group shares a bottleneck level of its own (C/fan), so one
    synchronous step resolves through ~max_fan progressive-filling
    rounds, and groups complete in rate order one event at a time —
    the structured workload the warm-start solver is built for (the
    uniform ring exchange above collapses to a single round and is the
    solver's *worst* case for warm starts).
    """
    pairs = []
    dst = 0
    srcs = iter(range(total, 4 * total))
    k = 1
    while len(pairs) < total:
        fan = min(k, total - len(pairs))
        for _ in range(fan):
            pairs.append((next(srcs), dst, 1.0 * units.MB))
        dst += 1
        k = k + 1 if k < max_fan else 1
    return pairs


def _star_for(pairs):
    hosts = max(max(s for s, _, _ in pairs),
                max(d for _, d, _ in pairs)) + 1
    return SwitchedStar(hosts, 100 * units.GBPS)


def test_bench_solver_micro(once):
    """Cold 64-flow step: batch-compiled engine vs per-event rebuilds."""

    def run():
        ref = ReferenceFluidSimulator(_ring())
        new = FluidNetworkSimulator(_ring())
        # identical results first (the speedup must not buy wrong answers)
        got = [r.finish_time for r in new.run_pairs(PAIRS)]
        want = [r[4] for r in ref.run_pairs(PAIRS)]
        assert got == want
        t_ref = _time(lambda: ref.run_pairs(PAIRS), 5)
        t_new = _time(lambda: new.run_pairs(PAIRS), 5)
        return t_ref, t_new

    t_ref, t_new = once(run)
    speedup = t_ref / t_new
    print(f"\nsolver micro (64 flows, cold): reference {t_ref*1e3:.2f} ms, "
          f"incremental {t_new*1e3:.2f} ms -> {speedup:.1f}x")
    _record("solver_micro_cold", {
        "flows": NODES, "reference_s": t_ref, "engine_s": t_new,
        "speedup": speedup})
    assert speedup > 1.5  # compile-once must win even with zero reuse


def test_bench_step_cache_hit_path(once):
    """The substrate hot path: ``step_time`` on a repeated 64-flow step.

    This is the PR's headline number — the engine as substrates drive
    it (pattern cache on, steady state) against the pre-refactor
    engine's only path.  The ≥5x acceptance bound is asserted here.
    """

    def run():
        ref = ReferenceFluidSimulator(_ring())
        new = FluidNetworkSimulator(_ring())
        # The normalized cache path agrees to rounding (~1 ulp); only
        # the raw run() path is bit-for-bit.
        t_new_val, t_ref_val = new.step_time(PAIRS), ref.step_time(PAIRS)
        assert abs(t_new_val - t_ref_val) <= 1e-12 * t_ref_val
        t_ref = _time(lambda: ref.step_time(PAIRS), 5)
        t_new = _time(lambda: new.step_time(PAIRS), 50)
        return t_ref, t_new

    t_ref, t_new = once(run)
    speedup = t_ref / t_new
    print(f"\nstep-cache hit path (64 flows): reference {t_ref*1e3:.2f} ms, "
          f"cached {t_new*1e6:.0f} us -> {speedup:.0f}x")
    _record("step_cache_hit", {
        "flows": NODES, "reference_s": t_ref, "engine_s": t_new,
        "speedup": speedup})
    assert speedup >= 5.0


def test_bench_sweep_cell_end_to_end(once):
    """One ``sweep substrates`` cell: 2(N−1)-step ring all-reduce on the
    electrical-ring substrate vs the same schedule stepped through the
    reference engine."""
    from repro.collectives.primitives import transfer_bytes
    from repro.collectives.ring_allreduce import generate_ring_allreduce
    from repro.config import Workload, default_electrical
    from repro.core.substrates import get_substrate

    n = 32
    wl = Workload(data_bytes=4 * units.MB)
    sched = generate_ring_allreduce(n)
    steps = [[(t.src, t.dst,
               transfer_bytes(t, wl.data_bytes, sched.num_chunks))
              for t in step]
             for step in sched.steps]
    system = default_electrical(n).with_(topology="ring")

    def run():
        ref = ReferenceFluidSimulator(
            RingTopology(system.num_nodes, system.link_rate,
                         bidirectional=True))
        t_ref = _time(lambda: [ref.step_time(s) for s in steps], 1)

        def cell():
            sub = get_substrate("electrical-ring", system=system)
            return sub.execute(sched, wl)

        t_new = _time(cell, 3)
        report = cell()
        ref_total = sum(system.step_latency + ref.step_time(s)
                        for s in steps)
        assert abs(report.total_time - ref_total) <= 1e-9 * ref_total
        return t_ref, t_new

    t_ref, t_new = once(run)
    speedup = t_ref / t_new
    print(f"\nsweep cell (N={n} e-ring all-reduce, {sched.num_steps} "
          f"steps): reference {t_ref*1e3:.1f} ms, substrate "
          f"{t_new*1e3:.1f} ms -> {speedup:.1f}x")
    _record("sweep_cell_end_to_end", {
        "nodes": n, "steps": sched.num_steps,
        "reference_s": t_ref, "engine_s": t_new, "speedup": speedup})
    # The ≥5x bound is the micro-benchmark's; end-to-end must show a
    # clearly measurable win (it lands ~5-6x; noise margin for CI).
    assert speedup >= 2.0


def test_bench_solver_warm_start(once):
    """Cold (cache-miss) 64-flow staircase step: warm-started active-set
    solves vs the PR 3 engine's from-zero refill at every event.

    Pattern caching is off on both sides (this measures the *solver*,
    not the cache) and the compiled pattern is shared, so the only
    difference is replaying unchanged bottleneck rounds vs re-deriving
    them.  The ≥1.5x acceptance bound is asserted here (it lands ~1.9x).
    """
    pairs = _staircase(64, 10)

    def run():
        warm = FluidNetworkSimulator(_star_for(pairs), warm_start=True,
                                     pattern_cache=False)
        cold = FluidNetworkSimulator(_star_for(pairs), warm_start=False,
                                     pattern_cache=False)
        # identical results first (warm starts must not buy wrong answers)
        import numpy as np
        assert np.array_equal(warm.step_profile(pairs).finish_times,
                              cold.step_profile(pairs).finish_times)
        t_cold = _time(lambda: cold.step_profile(pairs), 15)
        t_warm = _time(lambda: warm.step_profile(pairs), 15)
        return t_cold, t_warm

    t_cold, t_warm = once(run)
    speedup = t_cold / t_warm
    print(f"\nwarm-start solver (64 flows, staircase): from-zero "
          f"{t_cold*1e3:.2f} ms, warm-started {t_warm*1e3:.2f} ms "
          f"-> {speedup:.1f}x")
    _record("solver_warm_start", {
        "flows": 64, "reference_s": t_cold, "engine_s": t_warm,
        "speedup": speedup})
    assert speedup >= 1.5


def test_bench_sparse_large_batch(once):
    """1024-flow staircase step: scipy CSR incidence vs the dense
    matrix backend on the same cold solves.

    Warm starts are off on both sides so every event exercises the
    backend's per-round products (counts + freeze detection) — the
    regime the sparse backend exists for.  The ≥3x acceptance bound
    for the ≥512-flow case is asserted here (it lands ~6-8x).
    """
    if not have_sparse():  # pragma: no cover - CI installs scipy
        pytest.skip("scipy not installed")
    pairs = _staircase(1024, 45)

    def run():
        dense = FluidNetworkSimulator(_star_for(pairs), backend="dense",
                                      warm_start=False,
                                      pattern_cache=False)
        sparse = FluidNetworkSimulator(_star_for(pairs), backend="sparse",
                                       warm_start=False,
                                       pattern_cache=False)
        import numpy as np
        assert np.array_equal(sparse.step_profile(pairs).finish_times,
                              dense.step_profile(pairs).finish_times)
        t_dense = _time(lambda: dense.step_profile(pairs), 3)
        t_sparse = _time(lambda: sparse.step_profile(pairs), 3)
        return t_dense, t_sparse

    t_dense, t_sparse = once(run)
    speedup = t_dense / t_sparse
    print(f"\nsparse large batch (1024 flows): dense {t_dense*1e3:.1f} ms, "
          f"scipy CSR {t_sparse*1e3:.1f} ms -> {speedup:.1f}x")
    _record("sparse_large_batch", {
        "flows": 1024, "reference_s": t_dense, "engine_s": t_sparse,
        "speedup": speedup})
    assert speedup >= 3.0


def test_bench_sweep_shared_compile(once):
    """A link-rate sweep on one shared substrate vs a fresh substrate
    per cell (the PR 5 sweep shape).

    Cells differ only in capacities, so the shared substrate compiles
    each of the schedule's distinct step patterns once and later cells
    rebind capacities onto the cached structures; the per-cell side
    recompiles everything at every rate.  The electrical ring is the
    compile-heavy fabric (recursive doubling's distance-2^k exchanges
    route over O(N)-hop arcs), i.e. exactly where per-cell compilation
    hurt sweeps.  Results are identical (asserted)."""
    from repro.collectives.recursive_doubling import \
        generate_recursive_doubling
    from repro.config import Workload, default_electrical
    from repro.core.substrates import ElectricalSubstrate

    n = 128
    wl = Workload(data_bytes=4 * units.MB)
    sched = generate_recursive_doubling(n)
    base = default_electrical(n).with_(topology="ring")
    rates = tuple((25 + 25 * i) * units.GBPS for i in range(8))

    def per_cell():
        return [ElectricalSubstrate(topology="ring")
                .execute(sched, wl, system=base.with_(link_rate=r))
                .total_time
                for r in rates]

    def shared():
        sub = ElectricalSubstrate(topology="ring")
        return [sub.execute(sched, wl, system=base.with_(link_rate=r))
                .total_time
                for r in rates]

    def run():
        assert per_cell() == shared()
        t_cell = _time(per_cell, 5)
        t_shared = _time(shared, 5)
        return t_cell, t_shared

    t_cell, t_shared = once(run)
    speedup = t_cell / t_shared
    print(f"\nshared-compile sweep (N={n}, {len(rates)} rate cells): "
          f"per-cell {t_cell*1e3:.1f} ms, shared {t_shared*1e3:.1f} ms "
          f"-> {speedup:.1f}x")
    _record("sweep_shared_compile", {
        "nodes": n, "cells": len(rates), "steps": sched.num_steps,
        "reference_s": t_cell, "engine_s": t_shared, "speedup": speedup})
    assert speedup >= 2.0


def test_bench_solver_warm_admission(once):
    """An admission-heavy staircase run: warm starts that survive
    mid-flight admissions vs from-zero refills at every event.

    Until this PR the solver reset its fill state whenever a flow was
    admitted mid-flight, so admission-heavy workloads (pipelined
    schedules, staggered tenants) got no replay at all; now each
    admission replays the recorded rounds below the newcomer's first
    bottleneck.  The late arrivals here land on uncontended links, the
    deepest-replay case.  Identical finish times are asserted."""
    import numpy as np

    total, nadm = 256, 64
    base = _staircase(total, 32)
    late = [(4 * total + i, 2000 + i, 1.0 * units.MB) for i in range(nadm)]

    def flows_for(sim):
        flows = [sim.make_flow(s, d, z) for s, d, z in base]
        flows += [sim.make_flow(s, d, z, start_time=(i + 1) * 1e-6)
                  for i, (s, d, z) in enumerate(late)]
        return flows

    def run():
        warm = FluidNetworkSimulator(_star_for(base + late),
                                     warm_start=True, pattern_cache=False)
        cold = FluidNetworkSimulator(_star_for(base + late),
                                     warm_start=False, pattern_cache=False)
        assert np.array_equal(
            [r.finish_time for r in warm.run(flows_for(warm))],
            [r.finish_time for r in cold.run(flows_for(cold))])
        t_cold = _time(lambda: cold.run(flows_for(cold)), 5)
        t_warm = _time(lambda: warm.run(flows_for(warm)), 5)
        return t_cold, t_warm

    t_cold, t_warm = once(run)
    speedup = t_cold / t_warm
    print(f"\nadmission warm start ({total}+{nadm} flows, {nadm} "
          f"admissions): from-zero {t_cold*1e3:.2f} ms, warm "
          f"{t_warm*1e3:.2f} ms -> {speedup:.1f}x")
    _record("solver_warm_admission", {
        "flows": total + nadm, "admissions": nadm,
        "reference_s": t_cold, "engine_s": t_warm, "speedup": speedup})
    assert speedup >= 2.0


def test_bench_schedule_fused(once):
    """A whole 64-node ring all-reduce (126 steps, one repeated
    pattern) through ``step_time_many``'s fused path vs the PR 3
    per-step ``step_time`` loop, both from a cold simulator."""
    from repro.collectives.primitives import transfer_bytes
    from repro.collectives.ring_allreduce import generate_ring_allreduce

    n = 64
    sched = generate_ring_allreduce(n)
    data = 4 * units.MB
    steps = [[(t.src, t.dst, transfer_bytes(t, data, sched.num_chunks))
              for t in step]
             for step in sched.steps]

    def fresh():
        return FluidNetworkSimulator(
            RingTopology(n, 100 * units.GBPS, bidirectional=True))

    def run():
        fused_sim, loop_sim = fresh(), fresh()
        assert fused_sim.step_time_many(steps) == \
            [loop_sim.step_time(s) for s in steps]

        def loop():
            sim = fresh()
            return [sim.step_time(s) for s in steps]

        t_loop = _time(loop, 5)
        t_fused = _time(lambda: fresh().step_time_many(steps), 5)
        return t_loop, t_fused

    t_loop, t_fused = once(run)
    speedup = t_loop / t_fused
    print(f"\nfused schedule (N={n} ring all-reduce, {len(steps)} steps): "
          f"per-step {t_loop*1e3:.2f} ms, fused {t_fused*1e3:.2f} ms "
          f"-> {speedup:.1f}x")
    _record("schedule_fused", {
        "nodes": n, "steps": len(steps),
        "reference_s": t_loop, "engine_s": t_fused, "speedup": speedup})
    assert speedup >= 1.5
