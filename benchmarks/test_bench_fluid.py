"""Fluid-engine performance benchmarks (the PR's ≥5x acceptance gate).

Three levels, each compared against the frozen pre-refactor engine
(:mod:`repro.simulation._reference`) on the same inputs:

* **solver micro** — one cold 64-flow synchronous step through the
  batch-compiled event loop (compile + vectorized events, no cache);
* **step-cache hit path** — the same 64-flow step through
  ``step_time`` as the substrates drive it, where the pattern cache
  serves repeats of the step (a ring schedule repeats one pattern
  2(N−1) times);
* **end-to-end sweep cell** — a full ``substrate_sweep`` cell
  (electrical-ring ring all-reduce) against a loop over the reference
  engine.

Every test folds its measurement into ``BENCH_fluid.json`` at the repo
root — the machine-readable speedup summary CI uploads as an artifact
and gates against the committed baseline
(``benchmarks/BENCH_fluid.json``, see ``check_bench_regression.py``).
"""

import json
import time
from pathlib import Path

from repro import units
from repro.simulation._reference import ReferenceFluidSimulator
from repro.simulation.fluid import FluidNetworkSimulator
from repro.topology.ring import RingTopology

#: Where the machine-readable summary accumulates (repo root).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fluid.json"

#: The canonical micro-benchmark instance: a 64-flow synchronous step
#: (distance-8 exchange on a 64-node bidirectional ring; distinct sizes
#: force one allocation event per completion — the worst case).
NODES = 64
PAIRS = [(i, (i + 8) % NODES, 1.0 * units.MB + i) for i in range(NODES)]


def _ring():
    return RingTopology(NODES, capacity=100 * units.GBPS,
                        latency=1 * units.USEC)


def _time(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _record(section, payload):
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    data.setdefault("benchmark", "fluid-engine")
    data.setdefault("unit", "seconds")
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_bench_solver_micro(once):
    """Cold 64-flow step: batch-compiled engine vs per-event rebuilds."""

    def run():
        ref = ReferenceFluidSimulator(_ring())
        new = FluidNetworkSimulator(_ring())
        # identical results first (the speedup must not buy wrong answers)
        got = [r.finish_time for r in new.run_pairs(PAIRS)]
        want = [r[4] for r in ref.run_pairs(PAIRS)]
        assert got == want
        t_ref = _time(lambda: ref.run_pairs(PAIRS), 5)
        t_new = _time(lambda: new.run_pairs(PAIRS), 5)
        return t_ref, t_new

    t_ref, t_new = once(run)
    speedup = t_ref / t_new
    print(f"\nsolver micro (64 flows, cold): reference {t_ref*1e3:.2f} ms, "
          f"incremental {t_new*1e3:.2f} ms -> {speedup:.1f}x")
    _record("solver_micro_cold", {
        "flows": NODES, "reference_s": t_ref, "engine_s": t_new,
        "speedup": speedup})
    assert speedup > 1.5  # compile-once must win even with zero reuse


def test_bench_step_cache_hit_path(once):
    """The substrate hot path: ``step_time`` on a repeated 64-flow step.

    This is the PR's headline number — the engine as substrates drive
    it (pattern cache on, steady state) against the pre-refactor
    engine's only path.  The ≥5x acceptance bound is asserted here.
    """

    def run():
        ref = ReferenceFluidSimulator(_ring())
        new = FluidNetworkSimulator(_ring())
        # The normalized cache path agrees to rounding (~1 ulp); only
        # the raw run() path is bit-for-bit.
        t_new_val, t_ref_val = new.step_time(PAIRS), ref.step_time(PAIRS)
        assert abs(t_new_val - t_ref_val) <= 1e-12 * t_ref_val
        t_ref = _time(lambda: ref.step_time(PAIRS), 5)
        t_new = _time(lambda: new.step_time(PAIRS), 50)
        return t_ref, t_new

    t_ref, t_new = once(run)
    speedup = t_ref / t_new
    print(f"\nstep-cache hit path (64 flows): reference {t_ref*1e3:.2f} ms, "
          f"cached {t_new*1e6:.0f} us -> {speedup:.0f}x")
    _record("step_cache_hit", {
        "flows": NODES, "reference_s": t_ref, "engine_s": t_new,
        "speedup": speedup})
    assert speedup >= 5.0


def test_bench_sweep_cell_end_to_end(once):
    """One ``sweep substrates`` cell: 2(N−1)-step ring all-reduce on the
    electrical-ring substrate vs the same schedule stepped through the
    reference engine."""
    from repro.collectives.primitives import transfer_bytes
    from repro.collectives.ring_allreduce import generate_ring_allreduce
    from repro.config import Workload, default_electrical
    from repro.core.substrates import get_substrate

    n = 32
    wl = Workload(data_bytes=4 * units.MB)
    sched = generate_ring_allreduce(n)
    steps = [[(t.src, t.dst,
               transfer_bytes(t, wl.data_bytes, sched.num_chunks))
              for t in step]
             for step in sched.steps]
    system = default_electrical(n).with_(topology="ring")

    def run():
        ref = ReferenceFluidSimulator(
            RingTopology(system.num_nodes, system.link_rate,
                         bidirectional=True))
        t_ref = _time(lambda: [ref.step_time(s) for s in steps], 1)

        def cell():
            sub = get_substrate("electrical-ring", system=system)
            return sub.execute(sched, wl)

        t_new = _time(cell, 3)
        report = cell()
        ref_total = sum(system.step_latency + ref.step_time(s)
                        for s in steps)
        assert abs(report.total_time - ref_total) <= 1e-9 * ref_total
        return t_ref, t_new

    t_ref, t_new = once(run)
    speedup = t_ref / t_new
    print(f"\nsweep cell (N={n} e-ring all-reduce, {sched.num_steps} "
          f"steps): reference {t_ref*1e3:.1f} ms, substrate "
          f"{t_new*1e3:.1f} ms -> {speedup:.1f}x")
    _record("sweep_cell_end_to_end", {
        "nodes": n, "steps": sched.num_steps,
        "reference_s": t_ref, "engine_s": t_new, "speedup": speedup})
    # The ≥5x bound is the micro-benchmark's; end-to-end must show a
    # clearly measurable win (it lands ~5-6x; noise margin for CI).
    assert speedup >= 2.0
