"""OCS program-synthesis benchmarks (CI-gated, BENCH_ocs.json).

Two claims the lookahead/delta layer makes:

* **lookahead amortises reconfigurations** — on a reconfiguration-heavy
  schedule (64-node recursive doubling: six shrinking-distance
  matchings, each forcing the greedy policy to re-match the switch) a
  4-port fabric lets the DP install unions of consecutive matchings and
  serve several steps per paid delay.  The gated
  ``ocs_lookahead_vs_greedy`` section records the *simulated total
  time* ratio — a pure model quantity, machine-independent — and pins
  the dominance guarantee (lookahead never slower) on top;
* **delta decomposition patches churn** — a 9-step workload whose
  demand matrix only churns at the tail re-uses the previous König
  colouring and re-colours just the churned suffix.  The gated
  ``ocs_delta_decompose`` section compares wall time against a
  from-scratch ``decompose_demand`` per step (both paths slow down
  together on a slow CI host, so the ratio is machine-independent),
  with bit-for-bit parity asserted first.
"""

from conftest import (BENCH_OCS_JSON, best_time as _time,
                      record_bench as _record)

from repro.collectives.recursive_doubling import generate_recursive_doubling
from repro.config import Workload, default_ocs
from repro.core.substrates.reconfigurable import OCSReconfigurableSubstrate
from repro.topology.program import DecompositionDelta, decompose_demand

# -- lookahead vs greedy --------------------------------------------------
#: 64-node recursive doubling at a moderate (1 ms) reconfiguration
#: delay: five of the six matchings are off the boot ring, so the
#: greedy policy pays the delay per step; four ports let the DP install
#: port-feasible unions of consecutive matchings instead.
NODES = 64
DELAY = 1e-3
SYSTEM = default_ocs(NODES).with_(reconfiguration_delay=DELAY,
                                  ports_per_node=4)
SCHEDULE = generate_recursive_doubling(NODES)
WORKLOAD = Workload(data_bytes=1 << 20)

# -- delta decomposition churn workload -----------------------------------
#: 24 layered ring-shift matchings over 64 nodes (1536 pairs — inside
#: the optimal-König auto threshold); each of the following 8 steps
#: churns only the tail of the demand list, the delta layer's home
#: turf (steps in a training schedule repeat with small edits).
DNODES = 64
LAYERS = 24
PORTS = 2


def _churn_steps():
    base = [(i, (i + s) % DNODES)
            for s in range(1, LAYERS + 1) for i in range(DNODES)]
    steps = [list(base)]
    for k in range(1, 9):
        cur = list(steps[-1])
        del cur[-(8 + k):]
        shift = LAYERS + 6 + k
        cur.extend((i, (i + shift) % DNODES) for i in range(8 + k))
        steps.append(cur)
    return steps


def test_bench_lookahead_vs_greedy(once):
    """Whole-schedule DP vs the myopic per-step policy.

    Folds the ``ocs_lookahead_vs_greedy`` section into
    ``BENCH_ocs.json`` — a CI-gated summary (see
    ``check_bench_regression.py``).
    """

    def run():
        greedy = OCSReconfigurableSubstrate(SYSTEM).execute(SCHEDULE,
                                                            WORKLOAD)
        sub = OCSReconfigurableSubstrate(SYSTEM, lookahead=True)
        look = sub.execute(SCHEDULE, WORKLOAD)
        return greedy, look, sub

    greedy, look, sub = once(run)
    # The pinned guarantee: never worse, and here strictly better.
    assert look.total_time <= greedy.total_time
    speedup = greedy.total_time / look.total_time
    assert speedup >= 1.5
    saved = dict(sub.describe().parameters)["lookahead_reconfigs_saved"]
    assert saved > 0
    print(f"\nlookahead vs greedy (N={NODES}, recursive doubling, "
          f"delay={DELAY*1e3:.0f} ms, 4 ports): greedy "
          f"{greedy.total_time*1e3:.3f} ms, lookahead "
          f"{look.total_time*1e3:.3f} ms -> {speedup:.2f}x "
          f"({saved} reconfigurations saved)")
    _record("ocs_lookahead_vs_greedy", {
        "nodes": NODES, "delay_s": DELAY,
        "ports": SYSTEM.ports_per_node,
        "greedy_total_s": greedy.total_time,
        "lookahead_total_s": look.total_time,
        "reconfigs_saved": saved,
        "speedup": speedup,
    }, path=BENCH_OCS_JSON, benchmark="ocs-synthesis")


def test_bench_delta_decompose(once):
    """Delta-patched decomposition vs a from-scratch solve per step.

    Folds the ``ocs_delta_decompose`` section into ``BENCH_ocs.json``
    — a CI-gated summary (see ``check_bench_regression.py``).
    """
    steps = _churn_steps()

    def scratch():
        return [decompose_demand(tuple(s), PORTS) for s in steps]

    def patched():
        delta = DecompositionDelta()
        return [delta.solve(s, PORTS) for s in steps], delta

    def run():
        want = scratch()
        got, delta = patched()
        # Patching must be an exact computational shortcut.
        assert got == want
        assert delta.patched == len(steps) - 1  # cold solve, then patches
        assert delta.fallbacks == 0
        t_scratch = _time(scratch, 3)
        t_delta = _time(lambda: patched()[0], 3)
        return delta, t_scratch, t_delta

    delta, t_scratch, t_delta = once(run)
    speedup = t_scratch / t_delta
    assert speedup >= 3.0
    print(f"\ndelta decompose ({len(steps)}-step churn, "
          f"{LAYERS * DNODES} pairs, {PORTS} ports): scratch "
          f"{t_scratch*1e3:.1f} ms, delta {t_delta*1e3:.1f} ms -> "
          f"{speedup:.2f}x ({delta.patched} patches)")
    _record("ocs_delta_decompose", {
        "nodes": DNODES, "layers": LAYERS, "steps": len(steps),
        "pairs": LAYERS * DNODES, "patches": delta.patched,
        "reference_s": t_scratch, "engine_s": t_delta,
        "speedup": speedup,
    }, path=BENCH_OCS_JSON, benchmark="ocs-synthesis")
