"""EXT-A1 — wavelength-budget ablation.

Wrht's time should scale ~1/w while the budget feeds striping, then
flatten; O-Ring is budget-insensitive (it never uses more than one
wavelength per transfer).
"""

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.analysis.sweeps import wavelength_sweep
from repro.models.catalog import paper_workload

BUDGETS = (4, 8, 16, 32, 64, 128)


def _run():
    return wavelength_sweep(1024, paper_workload("vgg16"),
                            budgets=BUDGETS)


def test_wavelength_ablation(once):
    rows = once(_run)
    print()
    print(simple_table(
        ["w", "Wrht", "m", "steps", "O-Ring"],
        [(r.num_wavelengths, units.fmt_time(r.wrht_time),
          r.wrht_group_size, r.wrht_steps, units.fmt_time(r.oring_time))
         for r in rows],
        title="EXT-A1: VGG16 @ N=1024 vs wavelength budget"))

    # monotone improvement with more wavelengths
    times = [r.wrht_time for r in rows]
    assert all(a >= b for a, b in zip(times, times[1:]))
    # near-linear gain while striping dominates: 4 -> 64 buys >= 8x
    assert times[0] / times[BUDGETS.index(64)] > 8
    # O-Ring identical across budgets
    orings = {round(r.oring_time, 9) for r in rows}
    assert len(orings) == 1
    # Wrht beats O-Ring from a tiny budget upward
    assert rows[1].wrht_time < rows[1].oring_time
