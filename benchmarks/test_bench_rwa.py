"""EXT-A4 — First-Fit vs Best-Fit wavelength assignment.

Runs both policies on ring all-to-all instances (the hardest step Wrht
schedules), comparing spectrum span against the congestion lower bound
and the paper's ⌈p²/8⌉ budget; also times the assignment itself (it
runs once per schedule step).

Finding recorded here: with simple shortest-arc routing and a
deterministic ``src < dst`` antipodal tie-break, even-spread all-to-all
loads the hottest segment with ``p²/8 + p/4`` flows — the paper's
⌈p²/8⌉ assumes routing that also spreads antipodal pairs.  The Wrht
generator uses the *exact* demand (``alltoall_actual_demand``), so its
feasibility checks already absorb the +p/4.
"""

import pytest

from conftest import BENCH_RWA_JSON, best_time as _time, record_bench

from repro.analysis.ascii_plot import simple_table
from repro.collectives.alltoall_wdm import alltoall_wavelength_requirement
from repro.config import OpticalRingSystem
from repro.optical import (AssignmentPolicy, OpticalRingNetwork,
                           TransferRequest, assign_wavelengths)
from repro.optical.rwa import RwaDelta, assign_wavelengths_delta


def _alltoall_requests(p: int, n: int):
    """p participants evenly spread on an n-ring, full exchange."""
    nodes = [i * (n // p) for i in range(p)]
    return [TransferRequest(a, b) for a in nodes for b in nodes if a != b]


def _assign(p, n, policy):
    net = OpticalRingNetwork(OpticalRingSystem(
        num_nodes=n, num_wavelengths=256))
    return assign_wavelengths(net, _alltoall_requests(p, n), policy)


def test_rwa_policy_comparison(once):
    def run():
        rows = []
        for p in (4, 8, 12, 16, 24):
            ff = _assign(p, 96, AssignmentPolicy.FIRST_FIT)
            bf = _assign(p, 96, AssignmentPolicy.BEST_FIT)
            rows.append((p, alltoall_wavelength_requirement(p),
                         ff.max_link_load, ff.spectrum_span,
                         bf.spectrum_span))
        return rows

    rows = once(run)
    print()
    print(simple_table(
        ["p", "paper ⌈p²/8⌉", "link-load LB", "First-Fit span",
         "Best-Fit span"],
        rows, title="EXT-A4: all-to-all RWA on a 96-node ring"))
    for p, paper, lb, ff, bf in rows:
        assert ff >= lb and bf >= lb      # nothing beats congestion
        assert lb <= paper + p // 4       # naive tie-break costs <= p/4
        assert ff <= lb + p // 2          # FF stays near the lower bound
        assert bf <= lb + p // 2


@pytest.mark.parametrize("policy", list(AssignmentPolicy))
def test_rwa_assignment_speed(benchmark, policy):
    """Micro-benchmark: one all-to-all step's RWA (p=16, N=96)."""
    reqs = _alltoall_requests(16, 96)

    def run():
        net = OpticalRingNetwork(OpticalRingSystem(
            num_nodes=96, num_wavelengths=256))
        return assign_wavelengths(net, reqs, policy)

    result = benchmark(run)
    assert result.spectrum_span >= result.max_link_load


def _churn_instance():
    """A step sequence with a stable hot prefix and a churning tail.

    The prefix is an all-to-all among 12 clustered nodes — it pins the
    max link demand, so tail churn never trips the delta path's
    demand-change fallback.  The tail is 12 short sparse arcs far from
    the cluster that shift by one node per step: exactly the
    add/remove deltas consecutive schedule steps produce.
    """
    n = 96
    cluster = [TransferRequest(a, b) for a in range(12) for b in range(12)
               if a != b]

    def step(t):
        return cluster + [TransferRequest(40 + 4 * i + t, 42 + 4 * i + t)
                          for i in range(12)]

    return n, [step(t) for t in range(9)]


def test_bench_rwa_incremental_step(once):
    """Delta-patched RWA across a churning step sequence vs a full
    re-solve per step.

    Both sides produce bit-for-bit identical assignments (asserted);
    the incremental side keeps the previous step's occupancy and only
    releases/re-places the changed suffix.  Folds the
    ``rwa_incremental_step`` section into ``BENCH_rwa.json`` — the
    second CI-gated summary (see ``check_bench_regression.py``).
    """
    n, steps = _churn_instance()
    policy = AssignmentPolicy.FIRST_FIT

    def fresh():
        return OpticalRingNetwork(OpticalRingSystem(
            num_nodes=n, num_wavelengths=256))

    def full():
        net = fresh()
        out = []
        for reqs in steps:
            net.clear()
            out.append(assign_wavelengths(net, reqs, policy))
        return out

    def incremental():
        net = fresh()
        base = assign_wavelengths(net, steps[0], policy)
        prev = RwaDelta.from_solution(policy, 1, steps[0], base)
        out = [base]
        for reqs in steps[1:]:
            rwa = assign_wavelengths_delta(net, reqs, policy, prev)
            assert rwa is not None  # churn must stay on the patch path
            prev = RwaDelta.from_solution(policy, 1, reqs, rwa)
            out.append(rwa)
        return out

    def run():
        want, got = full(), incremental()
        assert [w.assignments for w in want] == [g.assignments for g in got]
        t_full = _time(full, 5)
        t_inc = _time(incremental, 5)
        return t_full, t_inc

    t_full, t_inc = once(run)
    speedup = t_full / t_inc
    print(f"\nincremental RWA ({len(steps)} steps, N={n}): full re-solve "
          f"{t_full*1e3:.2f} ms, delta-patched {t_inc*1e3:.2f} ms "
          f"-> {speedup:.1f}x")
    record_bench("rwa_incremental_step", {
        "nodes": n, "steps": len(steps),
        "requests_per_step": len(steps[0]),
        "reference_s": t_full, "engine_s": t_inc, "speedup": speedup},
        path=BENCH_RWA_JSON, benchmark="rwa")
    assert speedup >= 2.0


@pytest.mark.parametrize("cache", [False, True],
                         ids=["cache-off", "cache-on"])
def test_rwa_step_execution_speed(benchmark, cache):
    """Substrate-level counterpart: the memoized RWA hot path.

    Executes a schedule whose single step is the p=16 all-to-all on a
    96-node ring; with the cache on, every execution after the first
    reuses the memoized assignment (the planner/sweep access pattern).
    """
    from repro.collectives.schedule import (Schedule, Transfer,
                                            TransferOp)
    from repro.config import Workload
    from repro.core.substrates import OpticalRingSubstrate

    n = 96
    nodes = [i * (n // 16) for i in range(16)]
    sched = Schedule(num_nodes=n, num_chunks=1, name="bench-alltoall")
    sched.add_step(Transfer(src=a, dst=b, chunks=(0,),
                            op=TransferOp.REDUCE)
                   for a in nodes for b in nodes if a != b)
    sub = OpticalRingSubstrate(
        OpticalRingSystem(num_nodes=n, num_wavelengths=256), cache=cache)
    wl = Workload(data_bytes=1e6)
    sub.execute(sched, wl)  # warm the network (and cache, when on)

    report = benchmark(sub.execute, sched, wl)
    assert report.total_time > 0
