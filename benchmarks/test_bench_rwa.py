"""EXT-A4 — First-Fit vs Best-Fit wavelength assignment.

Runs both policies on ring all-to-all instances (the hardest step Wrht
schedules), comparing spectrum span against the congestion lower bound
and the paper's ⌈p²/8⌉ budget; also times the assignment itself (it
runs once per schedule step).

Finding recorded here: with simple shortest-arc routing and a
deterministic ``src < dst`` antipodal tie-break, even-spread all-to-all
loads the hottest segment with ``p²/8 + p/4`` flows — the paper's
⌈p²/8⌉ assumes routing that also spreads antipodal pairs.  The Wrht
generator uses the *exact* demand (``alltoall_actual_demand``), so its
feasibility checks already absorb the +p/4.
"""

import pytest

from repro.analysis.ascii_plot import simple_table
from repro.collectives.alltoall_wdm import alltoall_wavelength_requirement
from repro.config import OpticalRingSystem
from repro.optical import (AssignmentPolicy, OpticalRingNetwork,
                           TransferRequest, assign_wavelengths)


def _alltoall_requests(p: int, n: int):
    """p participants evenly spread on an n-ring, full exchange."""
    nodes = [i * (n // p) for i in range(p)]
    return [TransferRequest(a, b) for a in nodes for b in nodes if a != b]


def _assign(p, n, policy):
    net = OpticalRingNetwork(OpticalRingSystem(
        num_nodes=n, num_wavelengths=256))
    return assign_wavelengths(net, _alltoall_requests(p, n), policy)


def test_rwa_policy_comparison(once):
    def run():
        rows = []
        for p in (4, 8, 12, 16, 24):
            ff = _assign(p, 96, AssignmentPolicy.FIRST_FIT)
            bf = _assign(p, 96, AssignmentPolicy.BEST_FIT)
            rows.append((p, alltoall_wavelength_requirement(p),
                         ff.max_link_load, ff.spectrum_span,
                         bf.spectrum_span))
        return rows

    rows = once(run)
    print()
    print(simple_table(
        ["p", "paper ⌈p²/8⌉", "link-load LB", "First-Fit span",
         "Best-Fit span"],
        rows, title="EXT-A4: all-to-all RWA on a 96-node ring"))
    for p, paper, lb, ff, bf in rows:
        assert ff >= lb and bf >= lb      # nothing beats congestion
        assert lb <= paper + p // 4       # naive tie-break costs <= p/4
        assert ff <= lb + p // 2          # FF stays near the lower bound
        assert bf <= lb + p // 2


@pytest.mark.parametrize("policy", list(AssignmentPolicy))
def test_rwa_assignment_speed(benchmark, policy):
    """Micro-benchmark: one all-to-all step's RWA (p=16, N=96)."""
    reqs = _alltoall_requests(16, 96)

    def run():
        net = OpticalRingNetwork(OpticalRingSystem(
            num_nodes=96, num_wavelengths=256))
        return assign_wavelengths(net, reqs, policy)

    result = benchmark(run)
    assert result.spectrum_span >= result.max_link_load


@pytest.mark.parametrize("cache", [False, True],
                         ids=["cache-off", "cache-on"])
def test_rwa_step_execution_speed(benchmark, cache):
    """Substrate-level counterpart: the memoized RWA hot path.

    Executes a schedule whose single step is the p=16 all-to-all on a
    96-node ring; with the cache on, every execution after the first
    reuses the memoized assignment (the planner/sweep access pattern).
    """
    from repro.collectives.schedule import (Schedule, Transfer,
                                            TransferOp)
    from repro.config import Workload
    from repro.core.substrates import OpticalRingSubstrate

    n = 96
    nodes = [i * (n // 16) for i in range(16)]
    sched = Schedule(num_nodes=n, num_chunks=1, name="bench-alltoall")
    sched.add_step(Transfer(src=a, dst=b, chunks=(0,),
                            op=TransferOp.REDUCE)
                   for a in nodes for b in nodes if a != b)
    sub = OpticalRingSubstrate(
        OpticalRingSystem(num_nodes=n, num_wavelengths=256), cache=cache)
    wl = Workload(data_bytes=1e6)
    sub.execute(sched, wl)  # warm the network (and cache, when on)

    report = benchmark(sub.execute, sched, wl)
    assert report.total_time > 0
