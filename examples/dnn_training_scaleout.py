#!/usr/bin/env python3
"""Scale-out study: how each all-reduce behaves as the cluster grows.

Reproduces one Fig. 2 panel on the command line for a chosen model and
extends it with end-to-end iteration analysis: given a compute model for
the DNN, what fraction of each training iteration is communication, and
what scaling efficiency does each algorithm sustain at 1024 GPUs?

Run:  python examples/dnn_training_scaleout.py [model]
"""

import sys

from repro import units
from repro.analysis.figure2 import figure2_panel, render_panel
from repro.models.catalog import get_model
from repro.models.flops import training_flops_per_sample
from repro.models.training import DataParallelTrainingModel


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "resnet50"
    model = get_model(name)
    print(f"Model: {model.name} — catalog {model.num_parameters:,} "
          f"parameters (paper uses {model.paper_param_count / 1e6:.4g}M)\n")

    panel = figure2_panel(name)
    print(render_panel(panel))

    # End-to-end view at each scale: iteration time and efficiency.
    # (exact shape-propagated FLOPs for AlexNet/VGG16, published
    # profiler values for the branchy catalogs)
    compute = DataParallelTrainingModel(
        flops_per_sample=training_flops_per_sample(model),
        per_worker_batch=32,
        overlap_fraction=0.5)
    print(f"\nPer-iteration view (batch 32/GPU, 50% overlap, compute "
          f"{units.fmt_time(compute.compute_time)}):")
    print(f"{'N':>6} {'algorithm':>10} {'comm':>12} {'iter':>12} "
          f"{'comm frac':>10} {'efficiency':>11}")
    for i, n in enumerate(panel.scales):
        for algo in ("o-ring", "wrht"):
            comm = panel.times[algo][i]
            it = compute.iteration(comm)
            eff = compute.scaling_efficiency(comm)
            print(f"{n:>6} {algo:>10} {units.fmt_time(comm):>12} "
                  f"{units.fmt_time(it.iteration_time):>12} "
                  f"{it.communication_fraction:>10.1%} {eff:>11.1%}")

    best = panel.winner_at(panel.scales[-1])
    print(f"\nWinner at N={panel.scales[-1]}: {best}")


if __name__ == "__main__":
    main()
