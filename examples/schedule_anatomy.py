#!/usr/bin/env python3
"""Anatomy of a Wrht schedule: groups, wavelengths, and the RWA at work.

Walks a small example (N=27, m=3, w=8) through every layer of the
stack: the hierarchical grouping of §2, the generated schedule, the
per-step wavelength demand vs the paper's ⌊m/2⌋ bound, the real
First-Fit assignment on the ring, and the semantic proof that the
schedule is an all-reduce.

Run:  python examples/schedule_anatomy.py
"""

from repro import OpticalRingSystem, Workload, units
from repro.collectives import WrhtParameters, generate_wrht, \
    verify_allreduce
from repro.collectives.analysis import (describe_schedule,
                                        schedule_wavelength_demand)
from repro.core.executor import execute_on_optical_ring
from repro.optical import (AssignmentPolicy, OpticalRingNetwork,
                           TransferRequest, assign_wavelengths)
from repro.topology.ring import RingTopology

N, M, W = 27, 3, 8


def main() -> None:
    params = WrhtParameters(num_nodes=N, group_size=M, num_wavelengths=W,
                            alltoall_threshold=M)
    schedule, info = generate_wrht(params)

    print(f"Wrht on N={N}, m={M}, w={W}")
    print(f"steps: {schedule.num_steps} "
          f"(paper bound 2*ceil(log_{M} {N}) - 1 = "
          f"{2 * 3 - 1})\n")

    print("Hierarchical grouping (reduce stage):")
    for lvl, level in enumerate(info.levels):
        reps = ", ".join(str(r) for r in level.representatives)
        print(f"  level {lvl}: {len(level.groups)} groups -> "
              f"representatives [{reps}]")
    if info.used_alltoall:
        print(f"  all-to-all among {list(info.alltoall_participants)} "
              f"(everyone then holds the sum)\n")

    ring = RingTopology(N, capacity=1.0)
    demands = schedule_wavelength_demand(ring, schedule)
    print(f"Per-step wavelength demand: {demands} "
          f"(paper's tree bound: floor(m/2) = {M // 2})\n")

    print(describe_schedule(schedule, ring, max_steps=6))

    # Real RWA for the first step.
    system = OpticalRingSystem(num_nodes=N, num_wavelengths=W)
    net = OpticalRingNetwork(system)
    step0 = schedule.steps[0]
    requests = [TransferRequest(t.src, t.dst) for t in step0]
    rwa = assign_wavelengths(net, requests, AssignmentPolicy.FIRST_FIT)
    print(f"\nFirst-Fit RWA of step 0: {len(requests)} transfers, "
          f"spectrum span {rwa.spectrum_span} wavelength(s) "
          f"(reuse across {len(info.levels[0].groups)} disjoint groups)")

    # Semantic proof + timed execution.
    verify_allreduce(schedule, elements_per_chunk=2)
    print("Semantic verification: PASS (every node ends with the exact "
          "element-wise sum)")

    report = execute_on_optical_ring(
        schedule, system, Workload(data_bytes=100 * units.MB))
    print(f"\nSimulated execution of 100 MB gradients: "
          f"{units.fmt_time(report.total_time)}")
    for s in report.steps:
        print(f"  step {s.index}: {units.fmt_time(s.duration):>12} "
              f"(striping x{s.striping}, span {s.spectrum_span}, "
              f"tuning {units.fmt_time(s.tuning_time)})")


if __name__ == "__main__":
    main()
