#!/usr/bin/env python3
"""Algorithm shoot-out: full-fidelity execution timelines side by side.

Runs every implemented all-reduce — Wrht (plain and pipelined), O-Ring,
hierarchical ring on the optical rack; E-Ring and RD on the electrical
network — at full simulation fidelity (real per-step wavelength
assignment), then prints Gantt timelines and a ranked comparison.

Run:  python examples/algorithm_shootout.py
"""

from repro import ElectricalSystem, OpticalRingSystem, Workload, units
from repro.analysis.timeline import compare_timelines, render_timeline
from repro.collectives import (WrhtParameters, generate_hierarchical_ring,
                               generate_recursive_doubling,
                               generate_ring_allreduce, generate_wrht,
                               generate_wrht_pipelined)
from repro.core.executor import (execute_on_electrical,
                                 execute_on_optical_ring)

N = 64
WAVELENGTHS = 32
PAYLOAD = Workload(data_bytes=100 * units.MB, name="gradients")


def main() -> None:
    optical = OpticalRingSystem(num_nodes=N, num_wavelengths=WAVELENGTHS)
    electrical = ElectricalSystem(num_nodes=N)

    params = WrhtParameters(num_nodes=N, group_size=3,
                            num_wavelengths=WAVELENGTHS,
                            alltoall_threshold=3)
    wrht, _ = generate_wrht(params)
    wrht_piped, _ = generate_wrht_pipelined(params, num_chunks=4)

    reports = [
        execute_on_optical_ring(wrht, optical, PAYLOAD),
        execute_on_optical_ring(wrht_piped, optical, PAYLOAD),
        execute_on_optical_ring(generate_ring_allreduce(N), optical,
                                PAYLOAD, striping="off"),
        execute_on_optical_ring(generate_hierarchical_ring(N, 8),
                                optical, PAYLOAD, striping="off"),
        execute_on_electrical(generate_ring_allreduce(N),
                              electrical.with_(topology="ring"), PAYLOAD),
        execute_on_electrical(generate_recursive_doubling(N), electrical,
                              PAYLOAD),
    ]

    print(f"All-reduce shoot-out: {units.fmt_bytes(PAYLOAD.data_bytes)} "
          f"across {N} nodes "
          f"(optical: {WAVELENGTHS} wavelengths x "
          f"{units.fmt_rate(optical.wavelength_rate)})\n")
    print(compare_timelines(reports))

    print("\n--- Wrht timeline (every step retunes, stripes wide) ---")
    print(render_timeline(reports[0]))

    print("\n--- Pipelined Wrht timeline (4 chunks) ---")
    print(render_timeline(reports[1]))


if __name__ == "__main__":
    main()
