#!/usr/bin/env python3
"""Wavelength provisioning: how many channels does a rack need?

A system designer's question the paper's §2 formulas answer: for a
target cluster size and payload, sweep the per-direction wavelength
budget and report where Wrht's time flattens — plus the group sizes the
planner picks along the way and the paper's ⌊m/2⌋ / ⌈m*²/8⌉ accounting.

Run:  python examples/wavelength_provisioning.py
"""

from repro import units
from repro.analysis.ascii_plot import simple_table
from repro.analysis.sweeps import wavelength_sweep
from repro.analysis.tables import (render_wavelength_requirement_table,
                                   wavelength_requirement_table)
from repro.models.catalog import paper_workload

NUM_NODES = 512
BUDGETS = (2, 4, 8, 16, 32, 64, 96, 128)


def main() -> None:
    wl = paper_workload("vgg16")
    rows = wavelength_sweep(NUM_NODES, wl, budgets=BUDGETS)

    print(f"Wrht vs wavelength budget (N={NUM_NODES}, payload "
          f"{units.fmt_bytes(wl.data_bytes)}):\n")
    table = []
    prev = None
    for r in rows:
        speedup_vs_oring = r.oring_time / r.wrht_time
        marginal = "" if prev is None else f"{prev / r.wrht_time:.2f}x"
        table.append((r.num_wavelengths, units.fmt_time(r.wrht_time),
                      r.wrht_group_size, r.wrht_steps,
                      f"{speedup_vs_oring:.1f}x", marginal))
        prev = r.wrht_time
    print(simple_table(
        ["w/direction", "Wrht time", "m", "steps", "vs O-Ring",
         "gain vs prev w"], table))

    print("\nPaper §2 wavelength accounting for sample configurations:")
    print(render_wavelength_requirement_table(
        wavelength_requirement_table()))

    # Simple provisioning rule of thumb from the sweep:
    knee = None
    for a, b in zip(rows, rows[1:]):
        if a.wrht_time / b.wrht_time < 1.7:  # < ~2x gain from doubling
            knee = a.num_wavelengths
            break
    if knee:
        print(f"\nDiminishing returns start around w = {knee} "
              f"for this configuration.")


if __name__ == "__main__":
    main()
