#!/usr/bin/env python3
"""Quickstart: all-reduce real data on a simulated TeraRack.

Builds a 16-GPU optical ring, all-reduces one gradient tensor per rank
with Wrht, checks the numerical result, and prints the modelled
communication timeline — the five-minute tour of the library.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import OpticalRingSystem, Workload, units
from repro.core.allreduce_api import allreduce
from repro.core.planner import plan_wrht

NUM_GPUS = 16


def main() -> None:
    # One "gradient" tensor per GPU.
    rng = np.random.default_rng(42)
    gradients = [rng.normal(size=(1024, 256)) for _ in range(NUM_GPUS)]

    # A small TeraRack: 16 nodes, 64 wavelengths x 25 Gb/s per direction.
    system = OpticalRingSystem(num_nodes=NUM_GPUS)

    # 1) What schedule would Wrht use here?
    workload = Workload(data_bytes=gradients[0].nbytes, name="grads",
                        dtype_bytes=8)
    plan = plan_wrht(system, workload)
    print(f"Planned Wrht: group size m={plan.group_size} "
          f"({plan.variant} variant), {plan.num_steps} steps, "
          f"predicted {units.fmt_time(plan.predicted_time)}")

    # 2) Actually reduce the data while simulating the hardware.
    outcome = allreduce(gradients, algorithm="wrht", optical=system)

    expected = np.sum(gradients, axis=0)
    worst = max(np.max(np.abs(arr - expected)) for arr in outcome.data)
    print(f"Numerical check: every rank holds the sum "
          f"(max abs error {worst:.2e})")

    # 3) Inspect the modelled timeline.
    rep = outcome.report
    print(f"\nSimulated on {rep.substrate}: total "
          f"{units.fmt_time(rep.total_time)} over {rep.num_steps} steps")
    for step in rep.steps:
        print(f"  step {step.index}: {units.fmt_time(step.duration):>12}  "
              f"({step.num_transfers} transfers, striped over "
              f"{step.striping} wavelengths, "
              f"lambda-demand {step.wavelength_demand})")

    # 4) Compare with the naive optical ring on the same rack.
    naive = allreduce(gradients, algorithm="o-ring", optical=system)
    speedup = naive.report.total_time / rep.total_time
    print(f"\nO-Ring on the same rack: "
          f"{units.fmt_time(naive.report.total_time)}  "
          f"-> Wrht is {speedup:.1f}x faster")


if __name__ == "__main__":
    main()
