#!/usr/bin/env python3
"""Serving layer: a streaming job mix on one shared warm substrate.

Streams a seeded Poisson mix of training jobs (message sizes from real
catalog-model gradient bucketing) and inference-style jobs (activation
all-reduces) through the online scheduler, then replays the *same*
traffic under the three queue policies and under the size-adaptive
collective switch vs its two fixed arms — the fabric-level analogue of
an LLM stack's 1-stage/2-stage allreduce kernel dispatch.

Run:  python examples/serving_traffic.py
"""

from repro import units
from repro.serving import (ServingEngine, adaptive_policy, fixed_policy,
                           poisson_traffic)

CAPACITY = 32
NUM_JOBS = 40
RATE = 30.0


def headline(report) -> str:
    h = report.headline()
    return (f"{h['throughput_jobs_per_s']:6.2f} jobs/s  "
            f"jct mean {units.fmt_time(h['jct_mean_s']):>10}  "
            f"p99 {units.fmt_time(h['jct_p99_s']):>10}  "
            f"maxq {int(h['max_queue_depth'])}")


def main() -> None:
    jobs = poisson_traffic(num_jobs=NUM_JOBS, arrival_rate=RATE, seed=7,
                           node_choices=(4, 8, 16))
    print(f"{NUM_JOBS} jobs @ {RATE}/s on a {CAPACITY}-node electrical "
          f"ring (same seeded traffic throughout)\n")

    print("queue policies (adaptive collectives):")
    for policy in ("fifo", "sjf", "priority"):
        rep = ServingEngine(capacity=CAPACITY, policy=policy).run(jobs)
        print(f"  {policy:<9} {headline(rep)}")

    print("\ncollective dispatch (fifo):")
    for label, coll in (("adaptive", adaptive_policy()),
                        ("ring only", fixed_policy("ring")),
                        ("rd only", fixed_policy("recursive-doubling"))):
        rep = ServingEngine(capacity=CAPACITY,
                            collectives=coll).run(jobs)
        mix = ", ".join(f"{k}:{v}" for k, v in rep.algorithm_mix.items())
        print(f"  {label:<9} {headline(rep)}   [{mix}]")

    rep = ServingEngine(capacity=CAPACITY, placement="scatter").run(jobs)
    print(f"\nscatter placement (fifo, adaptive):\n"
          f"  scatter   {headline(rep)}")
    print("\nshared-substrate caches after all runs:")
    for kind, row in sorted(rep.cache_stats.items()):
        print(f"  {kind:<8} {row['hits']} hits / {row['misses']} misses "
              f"({row['hit_rate']:.0%})")


if __name__ == "__main__":
    main()
