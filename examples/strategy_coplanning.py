#!/usr/bin/env python3
"""Strategy co-planning: parallelization x fabric, searched jointly.

Three demos on the strategy demand IR:

1. **Lowering** — a ``ParallelStrategy`` (data x tensor x pipeline
   split, Megatron rank layout) lowers over a catalog model to a
   ``DemandProfile``: ordered ``CollectivePhase``s naming participant
   rank groups, per-group message size, and cadence.
2. **Co-planning** — ``strategy_plan_table`` prices every (strategy x
   rack size x leader x collective x policy) cell; ``plan_strategy``
   returns the searched best.  The headline: ``dp4+tp4`` moves ~5x
   fewer gradient bytes than pure DP but its strided groups are
   congested on a static ring — only a reconfiguring OCS (lookahead
   program installing the strided circuits once) converts the byte
   reduction into wall-clock.
3. **Parity** — the uniform data-parallel strategy is the legacy
   single-workload model, bit for bit, through ``plan_topology``.

Run:  python examples/strategy_coplanning.py
"""

from repro import units
from repro.config import default_ocs
from repro.core.topoplan import (plan_strategy, plan_topology,
                                 plan_topology_profile, strategy_plan_table)
from repro.models.catalog import get_model
from repro.models.strategies import ParallelStrategy, enumerate_strategies

NODES = 16
MODEL = "alexnet"


def main() -> None:
    model = get_model(MODEL)

    # 1. Lowering: what traffic does dp4+tp4 actually inject?
    strat = ParallelStrategy(data_parallel=4, tensor_parallel=4)
    profile = strat.lower(model)
    print(f"{strat.name} on {MODEL} lowers to {profile.num_phases} "
          f"phases, {units.fmt_bytes(profile.total_bytes)}/step:")
    for ph in profile.phases[:4]:
        print(f"  {ph.name:<14} {ph.num_groups} groups x "
              f"{units.fmt_bytes(ph.message_bytes)} x{ph.count} "
              f"({ph.cadence})")
    if profile.num_phases > 4:
        print(f"  ... and {profile.num_phases - 4} more")
    print()

    # 2. Co-planning: the headline dp-vs-tp search (tensor degree
    # capped at 4 — the compute-side limit on intra-layer splitting).
    pool = enumerate_strategies(NODES, max_tensor=4)
    table = strategy_plan_table(NODES, MODEL, strategies=pool,
                                rack_sizes=(), fidelity="simulate")
    static = min((p for p in table if p.policy == "static"),
                 key=lambda p: p.predicted_time)
    best = min(table, key=lambda p: p.predicted_time)
    print(f"co-planning {len(pool)} strategies at N={NODES}:")
    print(f"  best fixed topology : {static.label:<42} "
          f"{units.fmt_time(static.predicted_time)}")
    print(f"  co-planned          : {best.label:<42} "
          f"{units.fmt_time(best.predicted_time)}")
    print(f"  -> {static.predicted_time / best.predicted_time:.2f}x "
          f"from reconfiguring around the sharded strategy")
    print()

    # 3. Parity: pure DP with one fused bucket IS the legacy model.
    dp = ParallelStrategy(data_parallel=NODES)
    prof = dp.lower(model, bucket_bytes=float("inf"))
    sys = default_ocs(NODES)
    legacy = plan_topology(sys, prof.to_workload())
    viaprof = plan_topology_profile(sys, prof)
    assert viaprof.predicted_time == legacy.predicted_time
    assert viaprof.report == legacy.report
    print(f"uniform-DP parity: profile path == legacy path "
          f"({legacy.algorithm}/{legacy.policy}, "
          f"{units.fmt_time(legacy.predicted_time)}) — bit for bit")

    searched = plan_strategy(NODES, MODEL, strategies=pool, rack_sizes=())
    print(f"plan_strategy picks: {searched.label} "
          f"({units.fmt_time(searched.predicted_time)})")


if __name__ == "__main__":
    main()
