#!/usr/bin/env python3
"""Multi-rack hierarchical fabric: electrical racks on an optical ring.

Builds a 16-node cluster as 4 racks of 4 electrically-switched hosts
stitched together by a WDM leader ring, executes the matching Blink-style
hierarchical ring all-reduce on the ``"hier-rack"`` substrate, shows how
the two levels decompose per step (fluid rack stars vs conflict-exact
ring RWA), sweeps the rack size against the flat O-Ring/Wrht contenders,
and demonstrates the relay path that lets *any* schedule — here a flat
ring all-reduce — run on the hierarchy.

Run:  python examples/hierarchical_fabric.py
"""

from repro import units
from repro.collectives.hierarchical_ring import generate_hierarchical_ring
from repro.collectives.ring_allreduce import generate_ring_allreduce
from repro.config import HierarchicalSystem, Workload
from repro.core.comparison import compare_algorithms
from repro.core.cost_model import hier_rack_time
from repro.core.substrates import HierarchicalRackSubstrate

NUM_NODES = 16
GROUP_SIZE = 4
WORKLOAD = Workload(data_bytes=64 * units.MB, name="grads-64MB")


def main() -> None:
    # 1) Execute the matching two-level collective and look at the
    #    per-step level decomposition.
    system = HierarchicalSystem(num_nodes=NUM_NODES, group_size=GROUP_SIZE)
    sub = HierarchicalRackSubstrate(system)
    sched = generate_hierarchical_ring(NUM_NODES, GROUP_SIZE)
    report = sub.execute(sched, WORKLOAD)
    print(f"Hierarchical ring all-reduce on the rack fabric "
          f"(N={NUM_NODES}, g={GROUP_SIZE}, {WORKLOAD.name}):")
    print(f"  total time     : {units.fmt_time(report.total_time)}")
    print(f"  closed form    : "
          f"{units.fmt_time(hier_rack_time(system, WORKLOAD))} "
          f"(pinned to the simulation)")
    for step in report.steps:
        level = "optical leader ring" if step.wavelength_demand \
            else "electrical racks"
        extra = (f", striping x{step.striping}" if step.wavelength_demand
                 else "")
        print(f"  step {step.index:>2}: {units.fmt_time(step.duration):>12}"
              f"  ({level}{extra})")
    info = dict(sub.describe().parameters)
    print(f"  level counters : {info['local_steps']} local / "
          f"{info['leader_steps']} leader / {info['mixed_steps']} mixed "
          f"steps, {info['relayed_transfers']} relayed transfers")

    # 2) The rack-size knob: sweep g from the flat optical ring (g=1)
    #    to one purely electrical rack (g=N).
    print(f"\nRack-size sweep (N={NUM_NODES}, {WORKLOAD.name}):")
    print(f"  {'g':>3}  {'racks':>5}  {'steps':>5}  {'time':>12}")
    for g in (1, 2, 4, 8, 16):
        sys_g = system.with_(group_size=g)
        print(f"  {g:>3}  {sys_g.num_groups:>5}  "
              f"{2 * (g - 1) + 2 * (sys_g.num_groups - 1):>5}  "
              f"{units.fmt_time(hier_rack_time(sys_g, WORKLOAD)):>12}")

    # 3) The "hier" comparison scenario picks the best rack size and
    #    lines it up against the paper's contenders.
    comp = compare_algorithms(NUM_NODES, WORKLOAD,
                              algorithms=("e-ring", "o-ring", "wrht",
                                          "hier"))
    best = comp.results["hier"]
    print(f"\nScenario comparison (best rack size "
          f"g={best.detail['group_size']}):")
    for algo in ("e-ring", "o-ring", "wrht", "hier"):
        r = comp.results[algo]
        print(f"  {algo:>7}: {units.fmt_time(r.time_seconds):>12}  "
              f"on {r.substrate}")

    # 4) Any schedule runs on the hierarchy: cross-rack transfers that
    #    don't start/end at rack leaders relay through them
    #    (electrical uplink -> optical hop -> electrical downlink).
    flat = sub.execute(generate_ring_allreduce(NUM_NODES), WORKLOAD)
    print(f"\nFlat ring all-reduce via leader relay: "
          f"{units.fmt_time(flat.total_time)} "
          f"({flat.num_steps} steps)")


if __name__ == "__main__":
    main()
