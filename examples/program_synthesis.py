#!/usr/bin/env python3
"""Lookahead OCS program synthesis and delta-aware decomposition.

Three demos on the reconfigurable circuit-switch fabric:

1. **Whole-schedule synthesis** — ``synthesize_program`` runs a DP over
   the schedule whose state is the live circuit configuration, choosing
   per step between staying on the installed circuits, reconfiguring to
   the step's decomposition rounds, and pre-installing a union of
   *future* matchings so several steps share one paid reconfiguration
   delay.  The plan is provably never worse than the myopic per-step
   policy.
2. **The substrate knob** — the same planner behind
   ``OCSReconfigurableSubstrate(..., lookahead=True)`` (and
   ``python -m repro plan --substrate ocs-reconfig --lookahead``).
3. **Delta decomposition** — ``DecompositionDelta`` patches the König
   edge-colouring of a churned demand matrix instead of re-solving it,
   bit-for-bit identical to a cold ``decompose_demand``.

Run:  python examples/program_synthesis.py
"""

from repro import units
from repro.collectives.primitives import transfer_bytes
from repro.collectives.recursive_doubling import generate_recursive_doubling
from repro.config import Workload, default_ocs
from repro.core.substrates import OCSReconfigurableSubstrate
from repro.topology.program import (DecompositionDelta, decompose_demand,
                                    synthesize_program)

NUM_NODES = 64
DELAY = 1 * units.MSEC
WORKLOAD = Workload(data_bytes=1 * units.MB, name="grads-1MB")


def main() -> None:
    # A MEMS-class switch (1 ms retuning) with 4 ports per node: slow
    # enough that every avoided reconfiguration matters, and enough
    # ports that unions of consecutive matchings are feasible.
    system = default_ocs(NUM_NODES).with_(reconfiguration_delay=DELAY,
                                          ports_per_node=4)
    schedule = generate_recursive_doubling(NUM_NODES)

    # 1) Synthesize the program directly from the per-step demand
    #    matrices ({(src, dst): bytes} per synchronous step).
    demands = []
    for step in schedule.steps:
        sizes = {}
        for t in step.transfers:
            b = transfer_bytes(t, WORKLOAD.data_bytes, schedule.num_chunks)
            sizes[(t.src, t.dst)] = sizes.get((t.src, t.dst), 0.0) + b
        demands.append(sizes)
    program = synthesize_program(demands, system)
    print(f"Synthesized program (N={NUM_NODES}, recursive doubling, "
          f"delay={units.fmt_time(DELAY)}, 4 ports):")
    for i, st in enumerate(program.steps):
        print(f"  step {i}: {st.action:<7} "
              f"serve {units.fmt_time(st.total):>12}"
              + (f"  (+{units.fmt_time(st.reconfig_time)} retune)"
                 if st.reconfig_time > 0 else ""))
    print(f"  lookahead total : {units.fmt_time(program.total_time)} "
          f"({program.reconfigurations} reconfigurations)")
    print(f"  greedy total    : {units.fmt_time(program.greedy_time)} "
          f"({program.greedy_reconfigurations} reconfigurations)")
    print(f"  never worse, and here "
          f"{program.greedy_time / program.total_time:.2f}x faster "
          f"({program.reconfigurations_saved} switches saved)")

    # 2) Same planner through the substrate knob.
    greedy = OCSReconfigurableSubstrate(system).execute(schedule, WORKLOAD)
    sub = OCSReconfigurableSubstrate(system, lookahead=True)
    look = sub.execute(schedule, WORKLOAD)
    saved = dict(sub.describe().parameters)["lookahead_reconfigs_saved"]
    print(f"\nSubstrate execution ({WORKLOAD.name}):")
    print(f"  greedy policy   : {units.fmt_time(greedy.total_time)}")
    print(f"  lookahead=True  : {units.fmt_time(look.total_time)} "
          f"({saved} reconfigurations saved)")

    # 3) Delta decomposition: a training schedule repeats with small
    #    edits, so patch the previous colouring instead of re-solving.
    base = [(i, (i + s) % NUM_NODES)
            for s in range(1, 9) for i in range(NUM_NODES)]
    churned = list(base[:-6]) + [(i, (i + 11) % NUM_NODES)
                                 for i in range(6)]
    delta = DecompositionDelta()
    first = delta.solve(base, 2)
    second = delta.solve(churned, 2)
    assert second == decompose_demand(tuple(churned), 2)  # exact shortcut
    print(f"\nDelta decomposition ({len(base)} pairs, 2 ports):")
    print(f"  cold solve      : {len(first)} rounds")
    print(f"  6-pair churn    : {len(second)} rounds, patched="
          f"{delta.patched}, fallbacks={delta.fallbacks} "
          f"(bit-for-bit vs from-scratch)")


if __name__ == "__main__":
    main()
