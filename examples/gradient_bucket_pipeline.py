#!/usr/bin/env python3
"""Gradient bucketing: overlap-friendly all-reduce of a real layer map.

Frameworks reduce gradients in buckets as backward proceeds.  This
example bucketizes ResNet50's actual layer map (catalog-exact sizes),
runs each bucket through the planned Wrht schedule, and compares
"one big all-reduce" vs "bucketed + overlapped" iteration times on the
optical rack — the extension experiment the paper's future work hints
at.

Run:  python examples/gradient_bucket_pipeline.py
"""

from repro import OpticalRingSystem, Workload, units
from repro.core.planner import plan_wrht
from repro.models import (allreduce_message_sizes, bucketize_gradients,
                          gradient_workload)
from repro.models.catalog import resnet50
from repro.models.training import DataParallelTrainingModel

NUM_GPUS = 128
BUCKET_MB = 25


def main() -> None:
    model = resnet50()
    system = OpticalRingSystem(num_nodes=NUM_GPUS)

    buckets = bucketize_gradients(model,
                                  bucket_bytes=BUCKET_MB * units.MB)
    # The serving layer derives its per-step message sizes from the
    # same bucketing — one source of truth for "what does one training
    # step put on the wire".
    sizes = allreduce_message_sizes(model, bucket_bytes=BUCKET_MB * units.MB)
    assert sizes == [b.nbytes for b in buckets]
    print(f"{model.name}: {model.num_parameters:,} parameters -> "
          f"{len(buckets)} buckets of <= {BUCKET_MB} MB "
          f"(backward order)\n")

    # Time each bucket's all-reduce with a per-bucket Wrht plan.
    bucket_times = []
    for b, nbytes in zip(buckets, sizes):
        wl = Workload(data_bytes=nbytes, name=f"bucket{b.index}")
        plan = plan_wrht(system, wl)
        bucket_times.append(plan.predicted_time)
        head = b.layer_names[0]
        print(f"  bucket {b.index}: {units.fmt_bytes(nbytes):>12} "
              f"({b.num_layers:>2} layers from {head:<24}) "
              f"m={plan.group_size} steps={plan.num_steps} "
              f"-> {units.fmt_time(plan.predicted_time)}")

    # One monolithic all-reduce for reference.
    mono = plan_wrht(system, gradient_workload(model))
    total_bucketed = sum(bucket_times)
    print(f"\nmonolithic all-reduce : {units.fmt_time(mono.predicted_time)}")
    print(f"sum of bucket reduces : {units.fmt_time(total_bucketed)} "
          f"(per-step overheads repeat per bucket)")

    # Overlap: buckets launch while backward still computes.
    from repro.models.flops import training_flops_per_sample
    compute = DataParallelTrainingModel(
        flops_per_sample=training_flops_per_sample(model),
        per_worker_batch=32,
        overlap_fraction=0.9)
    it_mono = compute.iteration(mono.predicted_time)
    it_buck = compute.iteration(total_bucketed)
    print(f"\niteration time, monolithic + 90% overlap : "
          f"{units.fmt_time(it_mono.iteration_time)} "
          f"({it_mono.communication_fraction:.0%} comm)")
    print(f"iteration time, bucketed  + 90% overlap : "
          f"{units.fmt_time(it_buck.iteration_time)} "
          f"({it_buck.communication_fraction:.0%} comm)")
    print(f"scaling efficiency (bucketed): "
          f"{compute.scaling_efficiency(total_bucketed):.1%}")


if __name__ == "__main__":
    main()
