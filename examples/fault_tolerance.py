#!/usr/bin/env python3
"""Fault-tolerant fabric: deterministic failures, degraded routes, retries.

Three escalating demonstrations of the ``repro.faults`` subsystem:

1. **Degraded collective** — one ring all-reduce executed through a
   seeded fault plan: a fiber cut mid-run forces rerouting on the
   surviving arc, a wavelength loss shrinks the WDM budget (the
   incremental RWA treats it as churn), and the run converges back to
   fault-free step timings once the faults heal.  The empty plan is a
   bit-for-bit no-op — the keystone guarantee, asserted here.
2. **Retrying serving** — the same seeded job mix served twice, clean
   vs under injected link cuts and node crashes: killed jobs restart
   with exponential backoff, nothing is lost (completed + failed ==
   submitted), and availability/preemption counters quantify the hit.
3. **Fault-rate sweep** — EXT-F1: goodput and JCT tail vs fault rate,
   showing graceful degradation instead of a cliff.

Everything is seeded: run it twice, get the same tables.

Run:  python examples/fault_tolerance.py
"""

from repro import units
from repro.collectives.ring_allreduce import generate_ring_allreduce
from repro.config import Workload
from repro.core.substrates.optical_ring import OpticalRingSubstrate
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.serving import RetryPolicy, ServingEngine, poisson_traffic

CAPACITY = 16
NUM_JOBS = 30
RATE = 100.0


def degraded_collective() -> None:
    schedule = generate_ring_allreduce(8)
    workload = Workload(data_bytes=64 * units.MB)
    substrate = OpticalRingSubstrate(cache=False)
    healthy = substrate.execute(schedule, workload)

    # The empty plan is the documented bit-for-bit no-op.
    noop = substrate.execute_with_faults(schedule, workload, FaultPlan.none())
    assert noop.report.steps == healthy.steps

    step0 = healthy.steps[0].duration
    plan = FaultPlan.of([
        FaultEvent(time=0.0, kind=FaultKind.WAVELENGTH_DOWN, wavelength=0),
        FaultEvent(time=step0 * 0.5, kind=FaultKind.LINK_DOWN, link=(2, 3)),
        FaultEvent(time=step0 * 2.5, kind=FaultKind.LINK_UP, link=(2, 3)),
        FaultEvent(time=step0 * 4.5, kind=FaultKind.WAVELENGTH_UP,
                   wavelength=0),
    ])
    run = substrate.execute_with_faults(schedule, workload, plan)
    out = run.outcome
    print("degraded ring all-reduce (N=8, 64 MB):")
    print(f"  healthy total      : {units.fmt_time(healthy.total_time)}")
    print(f"  degraded total     : {units.fmt_time(run.report.total_time)}")
    print(f"  degraded steps     : {list(out.degraded_steps)} "
          f"of {len(run.report.steps)}")
    print(f"  repair overhead    : {units.fmt_time(out.repair_overhead)}")
    # After every fault heals the remaining steps match the healthy run.
    tail = run.report.steps[-1].duration - healthy.steps[-1].duration
    print(f"  post-repair drift  : {abs(tail):.3e} s (converged)")


def retrying_serving() -> None:
    jobs = poisson_traffic(num_jobs=NUM_JOBS, arrival_rate=RATE, seed=3,
                           node_choices=(4, 8))
    clean = ServingEngine(capacity=CAPACITY).run(jobs)
    plan = FaultPlan.poisson(duration=clean.makespan, num_nodes=CAPACITY,
                             seed=11, link_rate=3.0, node_rate=3.0,
                             mean_repair=0.05)
    faulty = ServingEngine(capacity=CAPACITY).run(
        jobs, faults=plan, retry=RetryPolicy(max_retries=4, backoff=1e-3))
    completed = {r.job.job_id for r in faulty.records}
    failed = {j.job_id for j in faulty.failed_jobs}
    assert completed | failed == {j.job_id for j in jobs}  # nothing lost
    print("retrying serving (same seeded mix, clean vs faulty):")
    print(f"  clean  : {clean.num_jobs} jobs in "
          f"{units.fmt_time(clean.makespan)}")
    print(f"  faulty : {faulty.num_jobs} done / {len(failed)} failed, "
          f"{faulty.preemptions} kills, {faulty.retries} retries, "
          f"availability {faulty.availability:.2%}, "
          f"{units.fmt_time(faulty.makespan)}")
    restarted = sum(1 for r in faulty.records if r.attempts)
    print(f"  restarted jobs that still finished: {restarted}")


def fault_rate_sweep() -> None:
    from repro.analysis.sweeps import fault_sweep

    rows = fault_sweep(capacity=CAPACITY, num_jobs=NUM_JOBS,
                       arrival_rate=RATE, fault_rates=(0.0, 4.0, 16.0),
                       seed=3)
    print("fault-rate sweep (EXT-F1):")
    for r in rows:
        print(f"  {r.fault_rate:5.1f} faults/s : "
              f"goodput {r.goodput_fraction:6.1%}  "
              f"jct p99 {units.fmt_time(r.jct_p99):>10}  "
              f"availability {r.availability:.2%}")


if __name__ == "__main__":
    degraded_collective()
    print()
    retrying_serving()
    print()
    fault_rate_sweep()
