#!/usr/bin/env python3
"""Reconfigurable OCS fabric: topology programs and the co-planner.

Builds a 16-node fabric behind an optical circuit switch, shows how the
``"ocs-reconfig"`` substrate decides per step between serving traffic on
the live circuits and paying the reconfiguration delay for a better
matching, and runs the topology/schedule co-planner across switching
speeds — the TopoOpt-style result that the best *physical topology*
depends on both the collective and the switch technology.

Run:  python examples/reconfigurable_fabric.py
"""

from repro import units
from repro.config import Workload, default_ocs
from repro.core.substrates import OCSReconfigurableSubstrate
from repro.core.topoplan import plan_topology, topology_plan_table

NUM_NODES = 16
WORKLOAD = Workload(data_bytes=64 * units.MB, name="grads-64MB")


def main() -> None:
    # 1) Execute one recursive-doubling all-reduce and inspect the
    #    circuit program the fabric actually ran.
    system = default_ocs(NUM_NODES)  # 2 ports, 100 Gb/s circuits, 10 us
    sub = OCSReconfigurableSubstrate(system)
    from repro.collectives.recursive_doubling import \
        generate_recursive_doubling
    report = sub.execute(generate_recursive_doubling(NUM_NODES), WORKLOAD)
    program = sub.last_program
    print(f"Recursive doubling on the OCS fabric "
          f"(N={NUM_NODES}, {WORKLOAD.name}):")
    print(f"  total time        : {units.fmt_time(report.total_time)}")
    print(f"  circuit program   : {program.num_configs} configurations, "
          f"{program.num_reconfigurations} reconfigurations, "
          f"{program.total_ports_changed()} circuits re-patched")
    for step in report.steps:
        verb = ("reconfigured" if step.tuning_time > 0
                else "stayed on live circuits")
        print(f"  step {step.index}: {units.fmt_time(step.duration):>12}  "
              f"({verb}, demand degree {step.wavelength_demand})")

    # 2) Co-plan (collective x reconfiguration policy) across switch
    #    technologies, from an ideal OCS to MEMS-class mirrors.
    print(f"\nCo-planner across reconfiguration delays "
          f"(N={NUM_NODES}, {WORKLOAD.name}):")
    print(f"  {'delay':>10}  {'best plan':>28}  {'time':>12}  "
          f"{'vs best static':>14}")
    for delay in (0.0, 1 * units.USEC, 10 * units.USEC,
                  100 * units.USEC, 1 * units.MSEC, 10 * units.MSEC):
        sys_d = default_ocs(NUM_NODES, reconfiguration_delay=delay)
        best = plan_topology(sys_d, WORKLOAD)
        static = min(
            (p for p in topology_plan_table(sys_d, WORKLOAD)
             if p.policy == "static"),
            key=lambda p: p.predicted_time)
        speedup = static.predicted_time / best.predicted_time
        label = f"{best.algorithm} ({best.policy})"
        print(f"  {units.fmt_time(delay):>10}  {label:>28}  "
              f"{units.fmt_time(best.predicted_time):>12}  "
              f"{speedup:>13.2f}x")


if __name__ == "__main__":
    main()
